// Package check validates DB4ML's isolation contracts post-hoc. A History
// records the isolation-relevant events of one or more ML runs — every
// mediated read with the record counter it observed, the per-read staleness
// evidence weighed at commit time, every snapshot install, the synchronous
// scheduler's barrier phase flips, the uber-transaction's final commit or
// abort, and concurrent OLTP probe reads — and the checkers replay the
// resulting totally ordered log against the paper's three contracts:
//
//  1. Bounded staleness (Section 4.2): every read a committed iteration
//     used lies in [IterCounter-S, IterCounter] at validation time.
//  2. Synchronous isolation: no sub-transaction reads across the barrier —
//     installs happen only in install phases, reads only in execute phases,
//     and an execute-phase read of round r sees at most r installed
//     snapshots.
//  3. Uber-transaction visibility: nothing written by an uncommitted
//     uber-transaction is visible to OLTP readers; after commit, readers at
//     or past the commit timestamp see the final state.
//
// Combined with internal/chaos (deterministic, seeded fault injection) this
// forms the repo's schedule-replay harness: a failing seed reproduces the
// exact fault sequence, and the recorded history pinpoints the violating
// event.
package check

import (
	"fmt"
	"sync"

	"db4ml/internal/itx"
	"db4ml/internal/storage"
)

// Kind classifies one history event.
type Kind int

const (
	// KindRead: a sub-transaction read snapshot ReadIter of record Rec
	// while its counter stood at Latest.
	KindRead Kind = iota
	// KindValidation: at finalize, the read of Rec at ReadIter was weighed
	// against the record's then-current counter Latest; Committed reports
	// whether the iteration's writes were installed.
	KindValidation
	// KindInstall: the iteration installed a snapshot on Rec, advancing its
	// counter to Latest (stored in slot Slot).
	KindInstall
	// KindOutcome: one finalize finished with verdict Action; Committed is
	// false for rollbacks.
	KindOutcome
	// KindBarrier: the synchronous scheduler flipped to Phase of Round.
	KindBarrier
	// KindProbe: an OLTP transaction with begin timestamp TS read Value
	// from Row of an attached table while the run was in flight.
	KindProbe
	// KindUberCommit: the uber-transaction committed at timestamp TS.
	KindUberCommit
	// KindUberAbort: the uber-transaction aborted.
	KindUberAbort
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindValidation:
		return "validation"
	case KindInstall:
		return "install"
	case KindOutcome:
		return "outcome"
	case KindBarrier:
		return "barrier"
	case KindProbe:
		return "probe"
	case KindUberCommit:
		return "uber-commit"
	case KindUberAbort:
		return "uber-abort"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry of the recorded history. Only the fields relevant to
// its Kind are meaningful (see the Kind constants).
type Event struct {
	Seq    int    // position in the totally ordered log
	Kind   Kind   //
	Job    string // label of the run the event belongs to
	Shard  int    // shard whose job emitted the event; -1 for single-kernel runs
	Worker int    // worker that emitted the event
	Sub    int    // sub-transaction index within its job (global index under ShardJob)
	Iter   uint64 // sub's committed-iteration count when emitted

	Rec      int    // dense id of the iterative record touched
	Slot     int    // snapshot-array slot an install landed in
	ReadIter uint64 // iteration of the snapshot read / validated
	Latest   uint64 // record counter observed (reads, validations) or reached (installs)

	Committed bool       // validations, outcomes
	Action    itx.Action // outcomes

	Round uint64 // barriers
	Phase int32  // barriers (exec.PhaseExecute / exec.PhaseInstall)

	Row   int64             // probes
	Value uint64            // probes
	TS    storage.Timestamp // probes (begin), uber-commits (commit)
}

// History is a mutex-sequenced event log shared by every recorder derived
// from it. The mutex both protects the slice and supplies the total order
// the checkers rely on: an event's Seq reflects real time at the instant it
// was appended, so cross-worker orderings established by the engine's own
// synchronization (a barrier flip before a re-push, an install before a
// barrier arrival) are preserved in the log.
type History struct {
	mu      sync.Mutex
	events  []Event
	recIDs  map[*storage.IterativeRecord]int
	ownerOf map[int]int // dense record id -> owning shard (distributed runs)
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{
		recIDs:  make(map[*storage.IterativeRecord]int),
		ownerOf: make(map[int]int),
	}
}

// Len returns the number of recorded events.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// Events returns a copy of the log in append order.
func (h *History) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

// append assigns the next sequence number and the record's dense id.
func (h *History) append(e Event, rec *storage.IterativeRecord) {
	h.mu.Lock()
	if rec != nil {
		id, ok := h.recIDs[rec]
		if !ok {
			id = len(h.recIDs)
			h.recIDs[rec] = id
		}
		e.Rec = id
		e.Slot = rec.SlotFor(e.Latest)
	} else {
		e.Rec = -1
	}
	e.Seq = len(h.events)
	h.events = append(h.events, e)
	h.mu.Unlock()
}

// Probe records one concurrent OLTP read of an attached row: a transaction
// with begin timestamp ts observed value in row. The visibility checker
// compares ts against the run's commit timestamp.
func (h *History) Probe(job string, ts storage.Timestamp, row int64, value uint64) {
	h.append(Event{Kind: KindProbe, Job: job, Shard: -1, Worker: -1, Sub: -1, TS: ts, Row: row, Value: value}, nil)
}

// TagRecordOwner declares which shard owns an iterative record, assigning
// the record its dense id if it has none yet. The cross-shard staleness
// checker uses the ownership map to tell local reads (a sub reading a
// record its own shard installs on) from cross-shard reads, which are the
// ones the coordinator's bounded-staleness contract governs.
func (h *History) TagRecordOwner(rec *storage.IterativeRecord, shard int) {
	if rec == nil {
		return
	}
	h.mu.Lock()
	id, ok := h.recIDs[rec]
	if !ok {
		id = len(h.recIDs)
		h.recIDs[rec] = id
	}
	h.ownerOf[id] = shard
	h.mu.Unlock()
}

// RecordOwners returns a copy of the dense-record-id -> owning-shard map
// built by TagRecordOwner.
func (h *History) RecordOwners() map[int]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]int, len(h.ownerOf))
	for id, s := range h.ownerOf {
		out[id] = s
	}
	return out
}

// Job derives a recorder for one ML run, tagging every event with the given
// label. The returned recorder satisfies the facade's RunRecorder interface
// (itx.Recorder + barrier flips + uber commit/abort); events from several
// jobs interleave in the shared log and are separated again by label at
// check time.
func (h *History) Job(label string) *JobRecorder {
	return &JobRecorder{h: h, label: label, shard: -1}
}

// ShardJob derives a recorder for one shard's slice of a distributed run.
// Events carry the shard id, and local sub-transaction indices are mapped
// through subMap back to their global indices, so the merged log reads as
// one logical run even though each shard's pool numbers its subs from
// zero. A nil subMap keeps local indices as-is.
func (h *History) ShardJob(label string, shard int, subMap []int) *JobRecorder {
	return &JobRecorder{h: h, label: label, shard: shard, subMap: subMap}
}

// JobRecorder funnels one run's events into its History.
type JobRecorder struct {
	h      *History
	label  string
	shard  int   // -1 for single-kernel runs
	subMap []int // local sub index -> global sub index; nil = identity
}

// sub maps a shard-local sub index to its global index.
func (r *JobRecorder) sub(local int) int {
	if r.subMap == nil || local < 0 || local >= len(r.subMap) {
		return local
	}
	return r.subMap[local]
}

// ObserveRead implements itx.Recorder.
func (r *JobRecorder) ObserveRead(worker, sub int, iter uint64, rec *storage.IterativeRecord, readIter, counter uint64) {
	r.h.append(Event{
		Kind: KindRead, Job: r.label, Shard: r.shard, Worker: worker, Sub: r.sub(sub), Iter: iter,
		ReadIter: readIter, Latest: counter,
	}, rec)
}

// ObserveValidation implements itx.Recorder.
func (r *JobRecorder) ObserveValidation(worker, sub int, iter uint64, rec *storage.IterativeRecord, readIter, latest uint64, committed bool) {
	r.h.append(Event{
		Kind: KindValidation, Job: r.label, Shard: r.shard, Worker: worker, Sub: r.sub(sub), Iter: iter,
		ReadIter: readIter, Latest: latest, Committed: committed,
	}, rec)
}

// ObserveInstall implements itx.Recorder.
func (r *JobRecorder) ObserveInstall(worker, sub int, iter uint64, rec *storage.IterativeRecord, counter uint64) {
	r.h.append(Event{
		Kind: KindInstall, Job: r.label, Shard: r.shard, Worker: worker, Sub: r.sub(sub), Iter: iter,
		Latest: counter,
	}, rec)
}

// ObserveOutcome implements itx.Recorder.
func (r *JobRecorder) ObserveOutcome(worker, sub int, iter uint64, action itx.Action, committed bool) {
	r.h.append(Event{
		Kind: KindOutcome, Job: r.label, Shard: r.shard, Worker: worker, Sub: r.sub(sub), Iter: iter,
		Action: action, Committed: committed,
	}, nil)
}

// RecordBarrier implements exec.Recorder.
func (r *JobRecorder) RecordBarrier(round uint64, phase int32) {
	r.h.append(Event{
		Kind: KindBarrier, Job: r.label, Shard: r.shard, Worker: -1, Sub: -1, Round: round, Phase: phase,
	}, nil)
}

// RecordUberCommit implements the facade's RunRecorder.
func (r *JobRecorder) RecordUberCommit(ts storage.Timestamp) {
	r.h.append(Event{Kind: KindUberCommit, Job: r.label, Shard: r.shard, Worker: -1, Sub: -1, TS: ts}, nil)
}

// RecordUberAbort implements the facade's RunRecorder.
func (r *JobRecorder) RecordUberAbort() {
	r.h.append(Event{Kind: KindUberAbort, Job: r.label, Shard: r.shard, Worker: -1, Sub: -1}, nil)
}

package check

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"db4ml"
	"db4ml/internal/chaos"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// TrialConfig describes one chaos trial: a seeded fault schedule applied to
// a real engine run whose recorded history is checked against the isolation
// contracts. The same (Seed, Level, Workers, Chaos) tuple replays the same
// fault schedule, which is what makes a failing trial debuggable.
type TrialConfig struct {
	// Seed drives the deterministic fault injector.
	Seed int64
	// Level is the isolation level under test.
	Level isolation.Options
	// Workers sizes the database's worker pool (2 NUMA regions when >1).
	Workers int
	// Subs is the number of sub-transactions in the counter ring.
	Subs int
	// Target is the value every sub-transaction counts its row up to.
	Target uint64
	// Chaos sets the fault probabilities (chaos.DefaultConfig for a storm,
	// the zero value for a fault-free control run).
	Chaos chaos.Config
	// GC, when nonzero, runs the trial with the background version
	// reclaimer at that interval (db4ml.WithVersionGC) — proving GC never
	// changes what any reader observes, even under the fault schedule.
	GC time.Duration
}

// TrialResult reports one trial: the contract-check report, whether the job
// was cancelled mid-run (by a chaos CancelJob fault), and how much evidence
// the trial produced.
type TrialResult struct {
	Report    Report
	Cancelled bool
	// Faults is the number of faults the injector fired into the run.
	Faults uint64
	// Events is the recorded history length.
	Events int
	Stats  db4ml.ExecStats
}

// LevelOptions returns the sweep's isolation options for a level: S=2 for
// bounded staleness, defaults otherwise.
func LevelOptions(level isolation.Level) isolation.Options {
	opts := isolation.Options{Level: level}
	if level == isolation.BoundedStaleness {
		opts.Staleness = 2
	}
	return opts
}

// counterSub is the sweep workload: sub-transaction i owns row i of a ring
// and counts it 0,1,...,target, one increment per committed iteration,
// reading neighbor row (i+1)%n each iteration purely to create cross-sub
// staleness and barrier pressure. The final table state is itself an
// oracle: a completed run must leave every row exactly at target (an
// increment lost to a fault schedule shows up as a smaller value), and a
// cancelled run must leave the pre-run zeros.
//
// Writes use one mechanism per isolation level — full-row Write under
// bounded staleness and synchronous, immediate relaxed column stores under
// asynchronous — because mixing seqlock installs and relaxed column stores
// on one record is not supported by the storage layer. The written row is
// tag-replicated (both columns equal), so a torn row is detectable.
type counterSub struct {
	tbl      *table.Table
	row, nbr table.RowID
	target   uint64
	level    isolation.Level

	rec, nrec *storage.IterativeRecord
	buf, nbuf storage.Payload
	reached   uint64 // value this iteration wrote
}

func (s *counterSub) Begin(c *itx.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.nrec = s.tbl.IterRecord(s.nbr)
	s.buf = make(storage.Payload, 2)
	s.nbuf = make(storage.Payload, 2)
}

func (s *counterSub) Execute(c *itx.Ctx) {
	c.Read(s.nrec, s.nbuf) // neighbor read: staleness pressure only
	c.Read(s.rec, s.buf)
	next := s.buf[0] + 1
	if next > s.target {
		// Asynchronous stores survive forced rollbacks (Hogwild semantics),
		// so a re-executed iteration must not count past the target.
		next = s.target
	}
	s.reached = next
	if s.level == isolation.Asynchronous {
		c.WriteCol(s.rec, 0, next)
		c.WriteCol(s.rec, 1, next)
	} else {
		s.buf[0], s.buf[1] = next, next
		c.Write(s.rec, s.buf)
	}
}

func (s *counterSub) Validate(c *itx.Ctx) itx.Action {
	if s.reached >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// RunTrial executes one chaos trial end to end: open a database with the
// seeded injector, run the counter-ring workload under the trial's
// isolation level with history recording on, probe the table from
// concurrent OLTP transactions the whole time, then check the recorded
// history against every applicable contract and the final table state
// against the workload oracle. The returned error reports harness or
// oracle failures; contract breaches land in the report.
func RunTrial(cfg TrialConfig) (TrialResult, error) {
	var res TrialResult
	if cfg.Subs < 2 || cfg.Target == 0 || cfg.Workers < 1 {
		return res, fmt.Errorf("check: degenerate trial config %+v", cfg)
	}
	inj := chaos.NewSeeded(cfg.Seed, cfg.Workers, cfg.Chaos)
	regions := 1
	if cfg.Workers > 1 {
		regions = 2
	}
	opts := []db4ml.Option{db4ml.WithWorkers(cfg.Workers), db4ml.WithRegions(regions), db4ml.WithChaos(inj)}
	if cfg.GC > 0 {
		opts = append(opts, db4ml.WithVersionGC(cfg.GC))
	}
	db := db4ml.Open(opts...)
	defer db.Close()

	tbl, err := db.CreateTable("chaos_ring",
		db4ml.Column{Name: "V", Type: db4ml.Int64},
		db4ml.Column{Name: "VTag", Type: db4ml.Int64})
	if err != nil {
		return res, err
	}
	rows := make([]storage.Payload, cfg.Subs)
	for i := range rows {
		rows[i] = storage.Payload{0, 0}
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		return res, err
	}

	if cfg.Level.Level == isolation.BoundedStaleness && !cfg.Level.SingleWriterHint {
		// Widen the seqlock's mid-copy window so readers actually exercise
		// their retry/fallback paths under the fault schedule.
		storage.SetInstallHook(func(iter uint64, slot int) { runtime.Gosched() })
		defer storage.SetInstallHook(nil)
	}

	subs := make([]db4ml.IterativeTransaction, cfg.Subs)
	for i := range subs {
		subs[i] = &counterSub{
			tbl:    tbl,
			row:    table.RowID(i),
			nbr:    table.RowID((i + 1) % cfg.Subs),
			target: cfg.Target,
			level:  cfg.Level.Level,
		}
	}

	hist := NewHistory()
	label := fmt.Sprintf("chaos-%s-seed%d-w%d", cfg.Level.Level, cfg.Seed, cfg.Workers)

	// Concurrent OLTP probes: sweep every ring row over and over while the
	// run is in flight, logging each observation with the reading
	// transaction's begin timestamp. The visibility checker later splits
	// them at the commit timestamp.
	probe := func() {
		tx := db.Begin()
		for r := 0; r < cfg.Subs; r++ {
			if p, ok := tx.Read(tbl, table.RowID(r)); ok {
				hist.Probe(label, tx.BeginTS(), int64(r), p[0])
			}
		}
		tx.Abort()
	}
	stopProbes := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stopProbes:
				return
			default:
			}
			probe()
			runtime.Gosched()
		}
	}()

	h, err := db.SubmitML(context.Background(), db4ml.MLRun{
		Isolation: cfg.Level,
		Label:     label,
		BatchSize: 2,
		Attach:    []db4ml.Attachment{{Table: tbl}},
		Subs:      subs,
		Chaos:     inj,
		Recorder:  hist.Job(label),
	})
	if err != nil {
		close(stopProbes)
		probeWG.Wait()
		return res, err
	}
	stats, err := h.Wait()
	close(stopProbes)
	probeWG.Wait()
	res.Stats = stats
	res.Faults = inj.Faults()
	switch {
	case err == nil:
		res.Cancelled = false
	case errors.Is(err, db4ml.ErrJobCancelled):
		res.Cancelled = true
	default:
		return res, err
	}
	probe() // guaranteed post-commit/post-abort observations

	// Workload oracle on the final stable state: a committed run left every
	// row exactly at target (a smaller value is a lost increment, a larger
	// one a double-count), a cancelled run left the pre-run zeros.
	want := cfg.Target
	if res.Cancelled {
		want = 0
	}
	tx := db.Begin()
	for r := 0; r < cfg.Subs; r++ {
		p, ok := tx.Read(tbl, table.RowID(r))
		if !ok {
			tx.Abort()
			return res, fmt.Errorf("final read of row %d failed", r)
		}
		if p[0] != want || p[1] != want {
			tx.Abort()
			return res, fmt.Errorf("row %d ended at (%d,%d), want (%d,%d) (cancelled=%v)",
				r, p[0], p[1], want, want, res.Cancelled)
		}
	}
	tx.Abort()

	events := hist.Events()
	res.Events = len(events)
	rule := VisibilityRule{
		Before: func(row int64, v uint64) bool { return v == 0 },
		After:  func(row int64, v uint64) bool { return v == cfg.Target },
	}
	res.Report = Check(events, label, cfg.Level, &rule)
	return res, nil
}

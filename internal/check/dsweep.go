package check

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/partition"
	"db4ml/internal/shard"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// ShardTrialConfig describes one distributed chaos trial: the counter-ring
// workload of RunTrial spread over a shard cluster and driven through the
// coordinator's distributed uber-transaction, with an independently seeded
// fault schedule per shard. The same (Seed, Level, Shards, Workers, Chaos)
// tuple replays the same per-shard fault schedules.
type ShardTrialConfig struct {
	// Seed drives the fault injectors; shard i's injector is seeded
	// Seed+i, so shards fault independently but reproducibly.
	Seed int64
	// Level is the isolation level under test. Synchronous trials run with
	// the coordinator's global barrier.
	Level isolation.Options
	// Shards is the cluster size.
	Shards int
	// Workers sizes each shard's worker pool (per shard, not total).
	Workers int
	// Subs is the global ring size; sub i owns global row i and runs on
	// the shard the router places row i on.
	Subs int
	// Target is the value every sub-transaction counts its row up to.
	Target uint64
	// Chaos sets the per-shard fault probabilities. A nonzero CancelAfter
	// is applied to ONE shard only (shard Seed mod Shards) — the trial
	// then exercises the coordinator's all-or-nothing abort: one shard's
	// cancellation must leave every shard's rows untouched.
	Chaos chaos.Config
}

// ShardTrialResult reports one distributed trial.
type ShardTrialResult struct {
	Report Report
	// Cancelled reports that a chaos CancelJob fault killed a shard's job
	// and the distributed uber-transaction aborted everywhere.
	Cancelled bool
	// Faults is the total fault count across every shard's injector.
	Faults uint64
	// Events is the recorded history length.
	Events int
	// Stats holds per-shard job statistics (zero value for shards that ran
	// no sub-transactions).
	Stats []exec.Stats
}

// shardTrialSchema mirrors the single-kernel sweep's tag-replicated
// two-column row.
var shardTrialSchema = table.MustSchema(
	table.Column{Name: "V", Type: table.Int64},
	table.Column{Name: "VTag", Type: table.Int64},
)

// RunShardTrial executes one distributed chaos trial end to end against
// internal/shard directly (no facade): build a cluster and a round-robin
// sharded ring table, run the counter workload as ONE distributed
// uber-transaction — each sub on the shard owning its row, reading its
// neighbor's row through the chain-sharing view (a cross-shard read
// whenever the neighbor lives elsewhere, which under round-robin placement
// is every read with Shards > 1) — probe every shard's rows from
// concurrent OLTP transactions the whole time, then check the history
// against the per-shard contracts, 2PC atomicity, cross-shard staleness,
// and the workload oracle.
func RunShardTrial(cfg ShardTrialConfig) (ShardTrialResult, error) {
	var res ShardTrialResult
	if cfg.Shards < 1 || cfg.Subs < 2 || cfg.Subs < cfg.Shards || cfg.Target == 0 || cfg.Workers < 1 {
		return res, fmt.Errorf("check: degenerate shard trial config %+v", cfg)
	}

	cluster, err := shard.NewCluster(cfg.Shards, exec.Config{Workers: cfg.Workers})
	if err != nil {
		return res, err
	}
	defer cluster.Close()

	// Round-robin placement puts ring neighbors on different shards, so
	// every neighbor read crosses a shard boundary when Shards > 1.
	router := shard.NewRouter(partition.RoundRobin, cfg.Shards, uint64(cfg.Subs))
	st := shard.NewTable("chaos_ring", shardTrialSchema, router)
	rows := make([]storage.Payload, cfg.Subs)
	for i := range rows {
		rows[i] = storage.Payload{0, 0}
	}
	if _, err := st.Load(cluster, rows); err != nil {
		return res, err
	}

	if cfg.Level.Level == isolation.BoundedStaleness && !cfg.Level.SingleWriterHint {
		storage.SetInstallHook(func(iter uint64, slot int) { runtime.Gosched() })
		defer storage.SetInstallHook(nil)
	}

	// One injector per shard. A CancelAfter schedule is confined to one
	// shard so the trial proves the distributed abort, not N independent
	// cancellations.
	cancelShard := -1
	if cfg.Chaos.CancelAfter > 0 {
		cancelShard = int(cfg.Seed % int64(cfg.Shards))
		if cancelShard < 0 {
			cancelShard += cfg.Shards
		}
	}
	injs := make([]*chaos.Seeded, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		shardChaos := cfg.Chaos
		if cancelShard >= 0 && s != cancelShard {
			shardChaos.CancelAfter = 0
		}
		injs[s] = chaos.NewSeeded(cfg.Seed+int64(s), cfg.Workers, shardChaos)
	}

	hist := NewHistory()
	base := fmt.Sprintf("dchaos-%s-seed%d-n%d", cfg.Level.Level, cfg.Seed, cfg.Shards)

	// Group subs by owning shard; subMap translates each shard's local sub
	// indices back to global ring positions in the merged log.
	plans := make([]shard.Plan, cfg.Shards)
	subMaps := make([][]int, cfg.Shards)
	for i := 0; i < cfg.Subs; i++ {
		s := st.ShardOf(table.RowID(i))
		if s < 0 {
			return res, fmt.Errorf("ring row %d has no owner", i)
		}
		plans[s].Subs = append(plans[s].Subs, &counterSub{
			tbl:    st.View(),
			row:    table.RowID(i),
			nbr:    table.RowID((i + 1) % cfg.Subs),
			target: cfg.Target,
			level:  cfg.Level.Level,
		})
		subMaps[s] = append(subMaps[s], i)
	}
	for s := 0; s < cfg.Shards; s++ {
		plans[s].Attach = []shard.Attachment{{Table: st.Local(s)}}
		plans[s].Config = exec.JobConfig{
			BatchSize: 2,
			Label:     ShardLabel(base, s),
			Chaos:     injs[s],
			Recorder:  hist.ShardJob(ShardLabel(base, s), s, subMaps[s]),
		}
	}

	// Concurrent OLTP probes, one prober per shard: each sweeps the rows
	// its shard owns at its shard's own pinned snapshot (global row ids in
	// the log). Per-shard probing is the sound formulation — a row's
	// visibility is defined by its OWNER's stable watermark, and the 2PC
	// atomicity checker separately proves all owners flip at one timestamp.
	probeShard := func(s int) {
		tx := cluster.Kernel(s).Mgr().Begin()
		for g := 0; g < cfg.Subs; g++ {
			if st.ShardOf(table.RowID(g)) != s {
				continue
			}
			_, local, _ := st.Locate(table.RowID(g))
			if p, ok := tx.Read(st.Local(s), local); ok {
				hist.Probe(base, tx.BeginTS(), int64(g), p[0])
			}
		}
		tx.Abort()
	}
	stopProbes := make(chan struct{})
	var probeWG sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		probeWG.Add(1)
		go func(s int) {
			defer probeWG.Done()
			for {
				select {
				case <-stopProbes:
					return
				default:
				}
				probeShard(s)
				runtime.Gosched()
			}
		}(s)
	}

	co := shard.NewCoordinator(cluster)
	h, err := co.Submit(shard.UberRun{
		Isolation:     cfg.Level,
		Plans:         plans,
		GlobalBarrier: cfg.Level.Level == isolation.Synchronous,
	})
	if err != nil {
		close(stopProbes)
		probeWG.Wait()
		return res, err
	}
	// Attachments are installed before Submit returns, so every ring row's
	// iterative record exists; tag each with its owner for the cross-shard
	// staleness checker.
	for g := 0; g < cfg.Subs; g++ {
		hist.TagRecordOwner(st.View().IterRecord(table.RowID(g)), st.ShardOf(table.RowID(g)))
	}

	stats, ts, err := h.Wait()
	co.Close()
	close(stopProbes)
	probeWG.Wait()
	res.Stats = stats
	for _, inj := range injs {
		res.Faults += inj.Faults()
	}
	switch {
	case err == nil:
		res.Cancelled = false
	case errors.Is(err, exec.ErrJobCancelled):
		res.Cancelled = true
	default:
		return res, err
	}
	for s := 0; s < cfg.Shards; s++ {
		probeShard(s) // guaranteed post-commit/post-abort observations per shard
	}

	// Workload oracle on every shard's final stable state, read through the
	// global view at the commit timestamp (or each shard's current stable
	// after an abort): a committed distributed run left every global row at
	// target, an aborted one left the pre-run zeros everywhere.
	want := cfg.Target
	if res.Cancelled {
		want = 0
		ts = 0
	} else if ts == 0 {
		return res, fmt.Errorf("distributed run converged but reported commit ts 0")
	}
	for g := 0; g < cfg.Subs; g++ {
		s := st.ShardOf(table.RowID(g))
		at := ts
		if at == 0 {
			at = cluster.Kernel(s).Mgr().Stable()
		}
		p, ok := st.View().Read(table.RowID(g), at)
		if !ok {
			return res, fmt.Errorf("final read of global row %d (shard %d) failed", g, s)
		}
		if p[0] != want || p[1] != want {
			return res, fmt.Errorf("global row %d (shard %d) ended at (%d,%d), want (%d,%d) (cancelled=%v)",
				g, s, p[0], p[1], want, want, res.Cancelled)
		}
	}

	events := hist.Events()
	res.Events = len(events)
	rule := VisibilityRule{
		Before: func(row int64, v uint64) bool { return v == 0 },
		After:  func(row int64, v uint64) bool { return v == cfg.Target },
	}
	res.Report = CheckDistributed(events, base, cfg.Shards, cfg.Level, hist.RecordOwners(), &rule)
	return res, nil
}

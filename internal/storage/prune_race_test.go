package storage

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPruneRaceWithChainWalkers is the dedicated regression test for the
// plain-store prune bug: readers walk the chain through Prev while Prune
// cuts links and a writer keeps installing new heads. Under `go test
// -race` the old field-store implementation fails here; the atomic.Pointer
// conversion must keep every read at or after the watermark correct
// throughout.
func TestPruneRaceWithChainWalkers(t *testing.T) {
	const (
		preload   = 200 // versions installed before the race starts
		watermark = Timestamp(100)
		readers   = 4
	)
	c := NewVersionChain(nil)
	var prev *Record
	for ts := Timestamp(1); ts <= preload; ts++ {
		r := NewRecord(ts, Payload{uint64(ts)})
		if !c.Install(prev, r) {
			t.Fatal("preload install failed")
		}
		prev = r
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Readers pinned in [watermark, preload]: every such snapshot must keep
	// resolving its exact version no matter how often Prune runs.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ts := watermark + Timestamp(seed)
			for !stop.Load() {
				r := c.VisibleAt(ts)
				if r == nil || r.Payload[0] != uint64(ts) {
					stop.Store(true)
					t.Errorf("VisibleAt(%d) = %v during prune", ts, r)
					return
				}
				ts++
				if ts > preload {
					ts = watermark
				}
			}
		}(g)
	}

	// Writer: grows the head a bounded number of times, racing the
	// pruner's surgery. (Bounded, not stop-driven: an unbounded chain
	// would make every reader's walk quadratically slower.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := Timestamp(preload + 1); ts <= preload+2000; ts++ {
			r := NewRecord(ts, Payload{uint64(ts)})
			if !c.Install(c.Head(), r) {
				t.Error("single-writer install lost its CAS")
				return
			}
		}
	}()

	for i := 0; i < 2000; i++ {
		c.Prune(watermark)
	}
	stop.Store(true)
	wg.Wait()

	// The newest version with Begin <= watermark survives; everything
	// below it is gone.
	r := c.VisibleAt(watermark)
	if r == nil || r.Payload[0] != uint64(watermark) {
		t.Fatalf("VisibleAt(watermark) = %v after race", r)
	}
	if p := r.Prev(); p != nil {
		t.Fatalf("version below the watermark survived: Begin=%d", p.Begin())
	}
}

func TestPruneReclaimsTombstoneChain(t *testing.T) {
	c := chainWithVersions(5)
	del := NewRecord(10, Payload{0})
	del.Deleted = true
	if !c.Install(c.Head(), del) {
		t.Fatal("tombstone install failed")
	}
	// Newest version at/below the watermark is the tombstone: the whole
	// chain — tombstone included — is dead weight ("row absent" either way).
	if dropped := c.Prune(15); dropped != 2 {
		t.Fatalf("Prune dropped %d, want 2", dropped)
	}
	if c.Head() != nil {
		t.Fatal("tombstone chain not emptied")
	}
	if r := c.VisibleAt(20); r != nil {
		t.Fatalf("emptied chain still visible: %v", r)
	}
	// And the row is re-insertable: a fresh Install on the empty chain.
	if !c.Install(nil, NewRecord(30, Payload{7})) {
		t.Fatal("reinsert after tombstone reclamation failed")
	}
	if r := c.VisibleAt(35); r == nil || r.Payload[0] != 7 {
		t.Fatalf("reinserted row unreadable: %v", r)
	}
}

func TestPruneTombstoneBelowLiveVersion(t *testing.T) {
	c := chainWithVersions(5)
	del := NewRecord(10, Payload{0})
	del.Deleted = true
	if !c.Install(c.Head(), del) {
		t.Fatal("tombstone install failed")
	}
	live := NewRecord(20, Payload{9})
	if !c.Install(c.Head(), live) {
		t.Fatal("reinsert install failed")
	}
	// Watermark 15: newest reachable version is the tombstone, but the row
	// was re-inserted above it — only the tail below the live version goes.
	if dropped := c.Prune(15); dropped != 2 {
		t.Fatalf("Prune dropped %d, want 2", dropped)
	}
	if c.Len() != 1 || c.Head() != live {
		t.Fatalf("surviving chain wrong: len=%d", c.Len())
	}
	// A reader between the delete and the reinsert sees "row absent" — the
	// same observation the tombstone used to provide.
	if r := c.VisibleAt(15); r != nil {
		t.Fatalf("reader at 15 sees %v, want absent", r)
	}
	if r := c.VisibleAt(25); r != live {
		t.Fatalf("reader at 25 sees %v, want the live version", r)
	}
}

func TestPruneStripsSupersededIterativeSlabs(t *testing.T) {
	c := NewVersionChain(nil)
	old := NewIterativeVersion(Payload{1}, 2)
	if !c.Install(nil, old) {
		t.Fatal("install failed")
	}
	old.Publish(10)
	mid := NewIterativeVersion(Payload{2}, 2)
	if !c.Install(c.Head(), mid) {
		t.Fatal("install failed")
	}
	mid.Publish(20)
	head := NewRecord(30, Payload{3})
	if !c.Install(c.Head(), head) {
		t.Fatal("install failed")
	}
	// Watermark 25: the version at 20 survives (a reader at 25 needs it)
	// but is superseded — its snapshot slab is unreachable by the engine
	// and must be stripped; the head's stays.
	if dropped := c.Prune(25); dropped != 1 {
		t.Fatalf("Prune dropped %d, want 1", dropped)
	}
	if mid.Iter() != nil {
		t.Fatal("superseded iterative slab not stripped")
	}
	if r := c.VisibleAt(25); r != mid || r.Payload[0] != 2 {
		t.Fatalf("payload read of stripped version broken: %v", r)
	}
}

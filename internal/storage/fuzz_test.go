package storage

import (
	"math"
	"sync"
	"testing"
)

// FuzzPayloadRoundTrip drives the payload encode/decode surface — int64 and
// float64 bit-casting, cloning, and the whole-row and single-column
// install/read paths of IterativeRecord — with fuzz-chosen values and
// shapes. Values must round-trip bit-exactly (NaNs included) through every
// path a sub-transaction can take.
func FuzzPayloadRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(-1), 3.1415, uint64(4))
	f.Add(uint64(1<<63), int64(math.MinInt64), math.Inf(1), uint64(1))
	f.Add(uint64(0xdeadbeef), int64(42), math.NaN(), uint64(7))
	f.Add(uint64(1), int64(0), -0.0, uint64(2))
	f.Fuzz(func(t *testing.T, a uint64, b int64, c float64, shape uint64) {
		width := int(shape%8) + 1
		nVersions := int(shape/8%4) + 1

		p := make(Payload, width)
		for i := range p {
			p[i] = a + uint64(i)
		}
		// Typed accessors round-trip bit-exactly on every slot.
		for i := 0; i < width; i++ {
			p.SetInt64(i, b)
			if got := p.Int64(i); got != b {
				t.Fatalf("slot %d: Int64 round trip %d -> %d", i, b, got)
			}
			p.SetFloat64(i, c)
			if got := p.Float64(i); math.Float64bits(got) != math.Float64bits(c) {
				t.Fatalf("slot %d: Float64 round trip %v -> %v", i, c, got)
			}
		}
		// Clone is an independent copy.
		clone := p.Clone()
		for i := range p {
			p[i] = ^p[i]
		}
		if math.Float64bits(clone.Float64(width-1)) != math.Float64bits(c) {
			t.Fatal("Clone shares storage with its source")
		}

		// Whole-row round trip through a fresh record: snapshot 0 is the
		// seeded payload under both read paths.
		rec := NewIterativeRecord(clone, nVersions)
		out := make(Payload, width)
		if iter := rec.ReadRelaxed(out); iter != 0 {
			t.Fatalf("fresh record ReadRelaxed iter = %d", iter)
		}
		for i := range out {
			if out[i] != clone[i] {
				t.Fatalf("ReadRelaxed slot %d: %x != %x", i, out[i], clone[i])
			}
		}
		if iter := rec.ReadRecent(out); iter != 0 {
			t.Fatalf("fresh record ReadRecent iter = %d", iter)
		}

		// Installed snapshots come back bit-exact and versioned.
		next := clone.Clone()
		for i := range next {
			next[i] = uint64(b) ^ uint64(i)
		}
		if iter := rec.Install(next); iter != 1 {
			t.Fatalf("first Install iter = %d", iter)
		}
		if iter := rec.ReadRecent(out); iter != 1 {
			t.Fatalf("ReadRecent after Install iter = %d", iter)
		}
		for i := range out {
			if out[i] != next[i] {
				t.Fatalf("ReadRecent slot %d: %x != %x", i, out[i], next[i])
			}
		}
		if nVersions > 1 {
			if ok := rec.ReadVersion(0, out); !ok {
				t.Fatal("snapshot 0 lost with free version slots")
			}
			for i := range out {
				if out[i] != clone[i] {
					t.Fatalf("ReadVersion(0) slot %d: %x != %x", i, out[i], clone[i])
				}
			}
		}

		// Single-column stores round-trip and never disturb neighbors.
		col := int(shape % uint64(width))
		rec.StoreRelaxed(col, a)
		if got := rec.LoadRelaxed(col); got != a {
			t.Fatalf("column %d round trip %x -> %x", col, a, got)
		}
		if s := rec.SlotFor(rec.Latest()); s < 0 || s >= nVersions {
			t.Fatalf("SlotFor out of range: %d of %d", s, nVersions)
		}
	})
}

// FuzzRecordInstall hammers one iterative record with concurrent seqlock
// installs and consistent readers under fuzz-chosen shapes. Every install
// writes a self-consistent row (all columns equal to a per-install tag), so
// any mixed row observed through ReadRecent/ReadVersion is a torn read the
// seqlock failed to prevent.
func FuzzRecordInstall(f *testing.F) {
	f.Add(int64(1), uint64(3), uint64(2), uint64(2), uint64(8))
	f.Add(int64(42), uint64(1), uint64(1), uint64(3), uint64(16))
	f.Add(int64(-7), uint64(6), uint64(4), uint64(4), uint64(12))
	f.Fuzz(func(t *testing.T, seed int64, wRaw, nvRaw, writersRaw, roundsRaw uint64) {
		width := int(wRaw%6) + 1
		nVersions := int(nvRaw%5) + 1
		writers := int(writersRaw%4) + 1
		rounds := int(roundsRaw%24) + 1

		row := func(tag uint64) Payload {
			p := make(Payload, width)
			for i := range p {
				p[i] = tag
			}
			return p
		}
		rec := NewIterativeRecord(row(0), nVersions)
		var tags sync.Map // iteration -> tag it was installed with
		tags.Store(uint64(0), uint64(0))

		var wg sync.WaitGroup
		done := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					tag := uint64(seed)*0x9e3779b97f4a7c15 + uint64(w)<<32 + uint64(r) + 1
					iter := rec.Install(row(tag))
					tags.Store(iter, tag)
				}
			}(w)
		}

		var readerWG sync.WaitGroup
		readErr := make(chan string, 1)
		for rd := 0; rd < 2; rd++ {
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				out := make(Payload, width)
				for {
					select {
					case <-done:
						return
					default:
					}
					iter := rec.ReadRecent(out)
					for i := 1; i < width; i++ {
						if out[i] != out[0] {
							select {
							case readErr <- "torn ReadRecent row":
							default:
							}
							return
						}
					}
					// The tag is published to the map after Install returns,
					// so a very fresh iteration may not be mapped yet; when it
					// is, the row must carry exactly that install's tag.
					if tag, ok := tags.Load(iter); ok && out[0] != tag.(uint64) {
						select {
						case readErr <- "ReadRecent row does not match its iteration's tag":
						default:
						}
						return
					}
				}
			}()
		}

		wg.Wait()
		close(done)
		readerWG.Wait()
		select {
		case msg := <-readErr:
			t.Fatal(msg)
		default:
		}

		// The counter accounts for every install exactly once.
		if got, want := rec.Latest(), uint64(writers*rounds); got != want {
			t.Fatalf("counter = %d after %d installs", got, want)
		}
		// The final quiescent state is readable and self-consistent.
		out := make(Payload, width)
		iter := rec.ReadRecent(out)
		if iter > rec.Latest() {
			t.Fatalf("ReadRecent iter %d beyond counter %d", iter, rec.Latest())
		}
		for i := 1; i < width; i++ {
			if out[i] != out[0] {
				t.Fatal("torn row at quiescence")
			}
		}
		if tag, ok := tags.Load(iter); ok && out[0] != tag.(uint64) {
			t.Fatalf("quiescent row %x does not match iteration %d's tag %x", out[0], iter, tag)
		}
		// ReadAtMost finds some snapshot at or below the counter.
		if got, ok := rec.ReadAtMost(rec.Latest(), out); ok && got > rec.Latest() {
			t.Fatalf("ReadAtMost returned future iteration %d", got)
		}
	})
}

package storage

import "testing"

// Regression tests for the uber-commit hang: LatestSnapshot (a versioned
// read) must terminate on records written exclusively through the relaxed
// fast paths, which bypass the seqlock.

func TestLatestSnapshotAfterInstallRelaxed(t *testing.T) {
	rec := NewIterativeRecord(Payload{0}, 1)
	for i := 1; i <= 7; i++ {
		rec.InstallRelaxed(Payload{uint64(i)})
	}
	got := rec.LatestSnapshot() // used to spin forever
	if got[0] != 7 {
		t.Fatalf("LatestSnapshot = %v, want [7]", got)
	}
}

func TestLatestSnapshotAfterColumnStores(t *testing.T) {
	rec := NewIterativeRecord(Payload{0, 0}, 1)
	rec.StoreRelaxed(0, 11)
	rec.StoreRelaxed(1, 22)
	rec.AddCounter()
	got := rec.LatestSnapshot()
	if got[0] != 11 || got[1] != 22 {
		t.Fatalf("LatestSnapshot = %v", got)
	}
}

func TestReadRecentAfterRelaxedQuiescence(t *testing.T) {
	rec := NewIterativeRecord(Payload{0}, 1)
	rec.InstallRelaxed(Payload{5})
	rec.AddCounter() // column-write bookkeeping bump
	out := make(Payload, 1)
	iter := rec.ReadRecent(out)
	if iter != 2 || out[0] != 5 {
		t.Fatalf("ReadRecent = (iter %d, %v)", iter, out)
	}
}

func TestRelaxedStampMonotonicUnderConcurrency(t *testing.T) {
	rec := NewIterativeRecord(Payload{0}, 1)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				rec.InstallRelaxed(Payload{uint64(i)})
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	// After quiescence the stamp matches the counter and versioned reads
	// terminate.
	if got := rec.LatestSnapshot(); got == nil {
		t.Fatal("LatestSnapshot returned nil")
	}
	if rec.Latest() != 4000 {
		t.Fatalf("counter = %d", rec.Latest())
	}
}

package storage

import "testing"

func chainWithVersions(begins ...Timestamp) *VersionChain {
	c := NewVersionChain(nil)
	var prev *Record
	for i, b := range begins {
		r := NewRecord(b, Payload{uint64(i)})
		if !c.Install(prev, r) {
			panic("install failed")
		}
		prev = r
	}
	return c
}

func TestPruneDropsInvisibleVersions(t *testing.T) {
	c := chainWithVersions(10, 20, 30, 40)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Watermark 25: the version at 20 is still visible to a reader at 25,
	// so only the version at 10 can go.
	if dropped := c.Prune(25); dropped != 1 {
		t.Fatalf("Prune(25) dropped %d, want 1", dropped)
	}
	if c.Len() != 3 {
		t.Fatalf("Len after prune = %d", c.Len())
	}
	// Reads at or after the watermark are unaffected.
	if r := c.VisibleAt(25); r == nil || r.Payload[0] != 1 {
		t.Fatalf("VisibleAt(25) = %v after prune", r)
	}
	if r := c.VisibleAt(45); r == nil || r.Payload[0] != 3 {
		t.Fatalf("VisibleAt(45) = %v after prune", r)
	}
}

func TestPruneEverythingOld(t *testing.T) {
	c := chainWithVersions(10, 20, 30)
	if dropped := c.Prune(100); dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPruneNothingVisible(t *testing.T) {
	c := chainWithVersions(10, 20)
	// Watermark below every Begin: nothing is prunable.
	if dropped := c.Prune(5); dropped != 0 {
		t.Fatalf("dropped %d, want 0", dropped)
	}
	if c.Len() != 2 {
		t.Fatal("prune below chain altered it")
	}
}

func TestPruneIdempotent(t *testing.T) {
	c := chainWithVersions(10, 20, 30)
	c.Prune(35)
	if dropped := c.Prune(35); dropped != 0 {
		t.Fatalf("second prune dropped %d", dropped)
	}
}

func TestPruneEmptyChain(t *testing.T) {
	c := NewVersionChain(nil)
	if c.Prune(10) != 0 || c.Len() != 0 {
		t.Fatal("empty chain prune misbehaved")
	}
}

package storage

import "unsafe"

// Address helpers for the micro-architectural experiments (Figures 10(a),
// 11 and 14): the cache simulator replays the real addresses of the
// objects the hot loops touch. They expose layout, not data, and are not
// used by the engine itself.

// HeaderAddr returns the address of the record's header word (the
// iteration counter) — touched by every versioned read and install.
func (r *IterativeRecord) HeaderAddr() uintptr {
	return uintptr(unsafe.Pointer(&r.iterCounter))
}

// SlotMetaAddr returns the address of the slot descriptor (seqlock word
// and data-slice header) for the snapshot with the given iteration.
func (r *IterativeRecord) SlotMetaAddr(iter uint64) uintptr {
	return uintptr(unsafe.Pointer(&r.slots[iter%uint64(len(r.slots))]))
}

// SlotDataAddr returns the address of column col of the snapshot slot for
// the given iteration.
func (r *IterativeRecord) SlotDataAddr(iter uint64, col int) uintptr {
	return uintptr(unsafe.Pointer(&r.slots[iter%uint64(len(r.slots))].data[col]))
}

// PayloadAddr returns the address of element i of a payload or any other
// []uint64 / []float64-backed vector via SliceAddr.
func PayloadAddr(p Payload, i int) uintptr {
	return uintptr(unsafe.Pointer(&p[i]))
}

// Float64SliceAddr returns the address of element i of a float64 slice —
// the plain-array model of the baselines.
func Float64SliceAddr(s []float64, i int) uintptr {
	return uintptr(unsafe.Pointer(&s[i]))
}

// Uint64SliceAddr returns the address of element i of a uint64 slice.
func Uint64SliceAddr(s []uint64, i int) uintptr {
	return uintptr(unsafe.Pointer(&s[i]))
}

// Int32SliceAddr returns the address of element i of an int32 slice —
// the index arrays of sparse feature vectors.
func Int32SliceAddr(s []int32, i int) uintptr {
	return uintptr(unsafe.Pointer(&s[i]))
}

package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPayloadFloat64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		p := make(Payload, 1)
		p.SetFloat64(0, v)
		got := p.Float64(0)
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		p := make(Payload, 1)
		p.SetInt64(0, v)
		return p.Int64(0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadMixedColumns(t *testing.T) {
	p := make(Payload, 3)
	p.SetInt64(0, -42)
	p.SetFloat64(1, 3.25)
	p.SetInt64(2, 7)
	if p.Int64(0) != -42 || p.Float64(1) != 3.25 || p.Int64(2) != 7 {
		t.Fatalf("mixed columns corrupted: %v", p)
	}
}

func TestPayloadCloneIndependent(t *testing.T) {
	p := Payload{1, 2, 3}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone shares backing array: original mutated to %v", p)
	}
	if len(c) != len(p) {
		t.Fatalf("Clone length %d, want %d", len(c), len(p))
	}
}

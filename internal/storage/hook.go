package storage

import "sync/atomic"

// InstallHook is a fault-injection point for the seqlock install path: when
// set, it runs inside IterativeRecord.Install after the writer has claimed
// the slot (seq odd) and before the payload copy, with the iteration being
// installed and its target slot. Delaying here keeps the slot mid-write for
// longer, forcing concurrent readers onto their retry/fallback paths — the
// window the chaos harness (internal/chaos, internal/check) stresses.
//
// The production cost of the hook is one atomic pointer load per seqlock
// install; nil (the default) injects nothing. Set it before any engine runs
// and clear it (SetInstallHook(nil)) afterwards; it is global, so chaos
// tests using it must not run in parallel with other engine tests.
type InstallHook func(iter uint64, slot int)

var installHook atomic.Pointer[InstallHook]

// SetInstallHook installs (or, with nil, clears) the global install hook.
func SetInstallHook(h InstallHook) {
	if h == nil {
		installHook.Store(nil)
		return
	}
	installHook.Store(&h)
}

package storage

import "sync/atomic"

// Record is one committed version of a row (Figure 3 in the paper). The
// header holds the Begin and End timestamps that bound the version's valid
// lifetime; the prev pointer links to the version it superseded. Records
// are immutable once installed except for the End timestamp, which the
// superseding transaction stamps when it installs the next version, and
// the link fields (prev, iter), which the version garbage collector cuts
// while concurrent readers traverse them — hence both are atomic pointers.
type Record struct {
	begin atomic.Uint64
	end   atomic.Uint64

	// prev is the previous version in the chain, nil for the first. It is
	// written by Install (once, before publication) and by Prune (cut to
	// nil) while chain walkers traverse concurrently, so all access goes
	// through atomic loads/stores — see Prev.
	prev atomic.Pointer[Record]

	// iter is non-nil when this version is an iterative record created by
	// an uber-transaction. The garbage collector strips it from superseded
	// versions (their snapshot slots can never be read again), so access
	// is atomic — see Iter.
	iter atomic.Pointer[IterativeRecord]

	// Payload is the row image of this version. For iterative records it
	// is the latest converged snapshot (see IterativeRecord).
	Payload Payload

	// Deleted marks this version as a tombstone: the row does not exist
	// for transactions reading in its lifetime. The chain keeps the
	// tombstone so snapshot reads before the delete still see the row.
	Deleted bool
}

// NewRecord builds a version valid from begin until superseded.
func NewRecord(begin Timestamp, payload Payload) *Record {
	r := &Record{Payload: payload}
	r.begin.Store(uint64(begin))
	r.end.Store(uint64(InfTS))
	return r
}

// Begin returns the timestamp at which this version became valid.
func (r *Record) Begin() Timestamp { return Timestamp(r.begin.Load()) }

// End returns the timestamp at which this version stopped being valid
// (InfTS while it is the most recent one).
func (r *Record) End() Timestamp { return Timestamp(r.end.Load()) }

// Prev returns the previous version in the chain, nil for the first (or
// after the garbage collector cut the link).
func (r *Record) Prev() *Record { return r.prev.Load() }

// SetPrev links r to the version it supersedes. Chain surgery outside
// Install/Prune is test-only.
func (r *Record) SetPrev(p *Record) { r.prev.Store(p) }

// Iter returns the iterative record riding on this version, nil for plain
// versions (or after the garbage collector stripped a superseded one).
func (r *Record) Iter() *IterativeRecord { return r.iter.Load() }

// SetIter attaches an iterative record to this version.
func (r *Record) SetIter(ir *IterativeRecord) { r.iter.Store(ir) }

// SetBegin publishes the version as of ts. Uber-transactions use this to
// flip an in-flight iterative record (begin = InfTS, invisible to everyone)
// to globally visible at their commit timestamp.
func (r *Record) SetBegin(ts Timestamp) { r.begin.Store(uint64(ts)) }

// SetEnd stamps the end of the version's lifetime.
func (r *Record) SetEnd(ts Timestamp) { r.end.Store(uint64(ts)) }

// Publish makes an in-flight version (installed with Begin = InfTS, e.g. an
// iterative record) globally visible as of ts and closes its predecessor's
// lifetime so version lifetimes stay disjoint.
func (r *Record) Publish(ts Timestamp) {
	r.SetBegin(ts)
	if p := r.Prev(); p != nil {
		p.SetEnd(ts)
	}
}

// VisibleAt reports whether this version is the one a transaction reading
// at ts must observe: begin <= ts < end.
func (r *Record) VisibleAt(ts Timestamp) bool {
	return r.Begin() <= ts && ts < r.End()
}

// VersionChain is the per-row list of versions, newest first. Install uses
// compare-and-swap so concurrent writers serialize without locks and
// readers traverse without blocking.
type VersionChain struct {
	head atomic.Pointer[Record]
}

// NewVersionChain returns a chain seeded with an initial version, or an
// empty chain if initial is nil.
func NewVersionChain(initial *Record) *VersionChain {
	c := &VersionChain{}
	if initial != nil {
		c.head.Store(initial)
	}
	return c
}

// Head returns the most recent version, committed or not, or nil for an
// empty chain.
func (c *VersionChain) Head() *Record { return c.head.Load() }

// Install makes r the new head if the current head is still expected.
// It returns false when another writer won the race, in which case the
// caller must abort (first-committer-wins). On success the superseded
// version's End is stamped with r's Begin.
func (c *VersionChain) Install(expected, r *Record) bool {
	r.prev.Store(expected)
	if !c.head.CompareAndSwap(expected, r) {
		return false
	}
	if expected != nil {
		expected.SetEnd(r.Begin())
	}
	return true
}

// Unwind removes head from the chain, restoring its predecessor, and
// reopens the predecessor's lifetime. It is used to discard an in-flight
// (never published) version, e.g. when an uber-transaction aborts. It
// returns false if head is no longer the chain head.
func (c *VersionChain) Unwind(head *Record) bool {
	prev := head.Prev()
	if !c.head.CompareAndSwap(head, prev) {
		return false
	}
	if prev != nil {
		prev.SetEnd(InfTS)
	}
	return true
}

// VisibleAt walks the chain and returns the version visible at ts, or nil
// if the row did not exist at ts.
func (c *VersionChain) VisibleAt(ts Timestamp) *Record {
	for r := c.Head(); r != nil; r = r.Prev() {
		if r.VisibleAt(ts) {
			return r
		}
	}
	return nil
}

// VisibleMatch resolves the version visible at ts and evaluates an
// optional single-column predicate against its payload in place — the
// storage-level half of scan predicate pushdown. Rows whose visible
// version is absent, deleted, or fails the predicate are rejected here,
// before any payload is cloned or handed up the operator tree, so a
// selective scan never materializes the tuples it filters out. test
// receives the raw 64-bit column word (the caller compiles the comparison
// against the column's declared type); nil means "no predicate".
func (c *VersionChain) VisibleMatch(ts Timestamp, col int, test func(word uint64) bool) (*Record, bool) {
	rec := c.VisibleAt(ts)
	if rec == nil || rec.Deleted {
		return nil, false
	}
	if test != nil && !test(rec.Payload[col]) {
		return rec, false
	}
	return rec, true
}

// Prune garbage-collects versions that no transaction reading at or after
// watermark can see: it finds the newest version with Begin <= watermark
// and cuts its Prev link, returning the number of versions dropped. When
// that newest reachable version is itself a tombstone, the whole chain
// tail — tombstone included — is reclaimed: every reader at or after the
// watermark observes "row absent" either way. Superseded iterative
// versions on the surviving prefix get their snapshot slabs stripped (the
// engine only ever reads the head's iterative record).
//
// Callers must pass a watermark at or below the oldest active snapshot —
// in this repo the transaction manager's SafeWatermark, which the
// internal/gc reclaimer enforces by clamping. The surgery is a pair of
// atomic cuts, safe against concurrent readers (they either hold the old
// sub-chain, which stays intact, or start from the head) and against
// concurrent writers (head removal is a CAS that loses to any Install).
func (c *VersionChain) Prune(watermark Timestamp) int {
	var succ *Record // oldest version newer than the watermark, if any
	for r := c.Head(); r != nil; r = r.Prev() {
		if r.Begin() > watermark {
			// Still reachable by a reader pinned between watermark and now
			// (this includes in-flight versions: InfTS > watermark).
			succ = r
			continue
		}
		// r is the newest version any reader at ts >= watermark can land
		// on; everything below it is dead.
		dropped := 0
		for p := r.Prev(); p != nil; p = p.Prev() {
			dropped++
		}
		r.prev.Store(nil)
		if r.Deleted {
			// The newest reachable version says "row absent"; an empty
			// tail says the same, so the tombstone itself is dead weight.
			if succ != nil {
				succ.prev.Store(nil)
				dropped++
			} else if c.head.CompareAndSwap(r, nil) {
				// Head removal races concurrent writers: losing the CAS
				// means someone just installed a new head over the
				// tombstone, which keeps it reachable — leave it be.
				dropped++
			}
		} else if succ != nil {
			// r survives but is superseded: nothing reads a non-head
			// iterative record, so its snapshot slab is reclaimable.
			r.iter.Store(nil)
		}
		return dropped
	}
	return 0
}

// Len returns the number of versions in the chain.
func (c *VersionChain) Len() int {
	n := 0
	for r := c.Head(); r != nil; r = r.Prev() {
		n++
	}
	return n
}

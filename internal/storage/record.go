package storage

import "sync/atomic"

// Record is one committed version of a row (Figure 3 in the paper). The
// header holds the Begin and End timestamps that bound the version's valid
// lifetime; Prev points at the version it superseded. Records are immutable
// once installed except for the End timestamp, which the superseding
// transaction stamps when it installs the next version, and the Iter field,
// which only iterative records use.
type Record struct {
	begin atomic.Uint64
	end   atomic.Uint64

	// Payload is the row image of this version. For iterative records it
	// is the latest converged snapshot (see IterativeRecord).
	Payload Payload

	// Deleted marks this version as a tombstone: the row does not exist
	// for transactions reading in its lifetime. The chain keeps the
	// tombstone so snapshot reads before the delete still see the row.
	Deleted bool

	// Prev is the previous version in the chain, nil for the first.
	Prev *Record

	// Iter is non-nil when this version is an iterative record created by
	// an uber-transaction.
	Iter *IterativeRecord
}

// NewRecord builds a version valid from begin until superseded.
func NewRecord(begin Timestamp, payload Payload) *Record {
	r := &Record{Payload: payload}
	r.begin.Store(uint64(begin))
	r.end.Store(uint64(InfTS))
	return r
}

// Begin returns the timestamp at which this version became valid.
func (r *Record) Begin() Timestamp { return Timestamp(r.begin.Load()) }

// End returns the timestamp at which this version stopped being valid
// (InfTS while it is the most recent one).
func (r *Record) End() Timestamp { return Timestamp(r.end.Load()) }

// SetBegin publishes the version as of ts. Uber-transactions use this to
// flip an in-flight iterative record (begin = InfTS, invisible to everyone)
// to globally visible at their commit timestamp.
func (r *Record) SetBegin(ts Timestamp) { r.begin.Store(uint64(ts)) }

// SetEnd stamps the end of the version's lifetime.
func (r *Record) SetEnd(ts Timestamp) { r.end.Store(uint64(ts)) }

// Publish makes an in-flight version (installed with Begin = InfTS, e.g. an
// iterative record) globally visible as of ts and closes its predecessor's
// lifetime so version lifetimes stay disjoint.
func (r *Record) Publish(ts Timestamp) {
	r.SetBegin(ts)
	if r.Prev != nil {
		r.Prev.SetEnd(ts)
	}
}

// VisibleAt reports whether this version is the one a transaction reading
// at ts must observe: begin <= ts < end.
func (r *Record) VisibleAt(ts Timestamp) bool {
	return r.Begin() <= ts && ts < r.End()
}

// VersionChain is the per-row list of versions, newest first. Install uses
// compare-and-swap so concurrent writers serialize without locks and
// readers traverse without blocking.
type VersionChain struct {
	head atomic.Pointer[Record]
}

// NewVersionChain returns a chain seeded with an initial version, or an
// empty chain if initial is nil.
func NewVersionChain(initial *Record) *VersionChain {
	c := &VersionChain{}
	if initial != nil {
		c.head.Store(initial)
	}
	return c
}

// Head returns the most recent version, committed or not, or nil for an
// empty chain.
func (c *VersionChain) Head() *Record { return c.head.Load() }

// Install makes r the new head if the current head is still expected.
// It returns false when another writer won the race, in which case the
// caller must abort (first-committer-wins). On success the superseded
// version's End is stamped with r's Begin.
func (c *VersionChain) Install(expected, r *Record) bool {
	r.Prev = expected
	if !c.head.CompareAndSwap(expected, r) {
		return false
	}
	if expected != nil {
		expected.SetEnd(r.Begin())
	}
	return true
}

// Unwind removes head from the chain, restoring its predecessor, and
// reopens the predecessor's lifetime. It is used to discard an in-flight
// (never published) version, e.g. when an uber-transaction aborts. It
// returns false if head is no longer the chain head.
func (c *VersionChain) Unwind(head *Record) bool {
	if !c.head.CompareAndSwap(head, head.Prev) {
		return false
	}
	if head.Prev != nil {
		head.Prev.SetEnd(InfTS)
	}
	return true
}

// VisibleAt walks the chain and returns the version visible at ts, or nil
// if the row did not exist at ts.
func (c *VersionChain) VisibleAt(ts Timestamp) *Record {
	for r := c.Head(); r != nil; r = r.Prev {
		if r.VisibleAt(ts) {
			return r
		}
	}
	return nil
}

// Prune garbage-collects versions that no transaction reading at or after
// watermark can see: it finds the newest version with Begin <= watermark
// and cuts its Prev link, returning the number of versions dropped.
// Callers must guarantee no active transaction has a begin timestamp below
// watermark (in this repo: the transaction manager's oldest active
// snapshot). Safe against concurrent readers — they either hold the old
// sub-chain (still intact) or start from the head.
func (c *VersionChain) Prune(watermark Timestamp) int {
	for r := c.Head(); r != nil; r = r.Prev {
		if r.Begin() <= watermark {
			dropped := 0
			for p := r.Prev; p != nil; p = p.Prev {
				dropped++
			}
			r.Prev = nil
			return dropped
		}
	}
	return 0
}

// Len returns the number of versions in the chain.
func (c *VersionChain) Len() int {
	n := 0
	for r := c.Head(); r != nil; r = r.Prev {
		n++
	}
	return n
}

package storage

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestIterativeRecordInitialSnapshot(t *testing.T) {
	r := NewIterativeRecord(Payload{10, 20}, 3)
	if r.Latest() != 0 {
		t.Fatalf("fresh record Latest() = %d, want 0", r.Latest())
	}
	out := make(Payload, 2)
	if !r.ReadVersion(0, out) {
		t.Fatal("snapshot 0 unreadable on fresh record")
	}
	if out[0] != 10 || out[1] != 20 {
		t.Fatalf("snapshot 0 = %v, want [10 20]", out)
	}
	if got := r.ReadRecent(out); got != 0 {
		t.Fatalf("ReadRecent iteration = %d, want 0", got)
	}
}

func TestIterativeRecordPanicsOnZeroVersions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIterativeRecord(_, 0) did not panic")
		}
	}()
	NewIterativeRecord(Payload{1}, 0)
}

func TestIterativeInstallAdvancesCounter(t *testing.T) {
	r := NewIterativeRecord(Payload{0}, 4)
	for i := 1; i <= 10; i++ {
		got := r.Install(Payload{uint64(i)})
		if got != uint64(i) {
			t.Fatalf("Install #%d returned iteration %d", i, got)
		}
	}
	out := make(Payload, 1)
	if iter := r.ReadRecent(out); iter != 10 || out[0] != 10 {
		t.Fatalf("ReadRecent = (iter %d, %v), want (10, [10])", iter, out)
	}
}

func TestIterativeCircularOverwrite(t *testing.T) {
	const n = 3
	r := NewIterativeRecord(Payload{0}, n)
	for i := 1; i <= 7; i++ {
		r.Install(Payload{uint64(i)})
	}
	out := make(Payload, 1)
	// Snapshots 7, 6, 5 live in the 3 slots; everything older is gone.
	for iter := uint64(5); iter <= 7; iter++ {
		if !r.ReadVersion(iter, out) || out[0] != iter {
			t.Errorf("snapshot %d unreadable or wrong: ok=%v val=%v", iter, r.ReadVersion(iter, out), out)
		}
	}
	for iter := uint64(0); iter <= 4; iter++ {
		if r.ReadVersion(iter, out) {
			t.Errorf("overwritten snapshot %d still readable", iter)
		}
	}
}

func TestIterativeReadAtMost(t *testing.T) {
	r := NewIterativeRecord(Payload{0}, 4)
	for i := 1; i <= 6; i++ {
		r.Install(Payload{uint64(i)})
	}
	out := make(Payload, 1)
	iter, ok := r.ReadAtMost(5, out)
	if !ok || iter != 5 || out[0] != 5 {
		t.Fatalf("ReadAtMost(5) = (%d, %v) val %v, want snapshot 5", iter, ok, out)
	}
	iter, ok = r.ReadAtMost(100, out)
	if !ok || iter != 6 {
		t.Fatalf("ReadAtMost(100) = (%d, %v), want latest snapshot 6", iter, ok)
	}
	if _, ok = r.ReadAtMost(1, out); ok {
		t.Fatal("ReadAtMost(1) succeeded although snapshot 1 was overwritten")
	}
}

func TestIterativeSingleVersionKeepsLatestOnly(t *testing.T) {
	r := NewIterativeRecord(Payload{0}, 1)
	for i := 1; i <= 5; i++ {
		r.Install(Payload{uint64(i)})
	}
	out := make(Payload, 1)
	if iter := r.ReadRecent(out); iter != 5 || out[0] != 5 {
		t.Fatalf("single-version record ReadRecent = (%d, %v), want (5, [5])", iter, out)
	}
}

func TestIterativeRelaxedPath(t *testing.T) {
	r := NewIterativeRecord(Payload{0, 0}, 1)
	r.InstallRelaxed(Payload{11, 22})
	out := make(Payload, 2)
	iter := r.ReadRelaxed(out)
	if iter != 1 || out[0] != 11 || out[1] != 22 {
		t.Fatalf("relaxed round trip = iter %d, %v", iter, out)
	}
	r.StoreRelaxed(1, math.Float64bits(2.5))
	if math.Float64frombits(r.LoadRelaxed(1)) != 2.5 {
		t.Fatal("StoreRelaxed/LoadRelaxed column round trip failed")
	}
	if r.AddCounter() != 2 {
		t.Fatal("AddCounter did not advance")
	}
}

// Concurrent writers must produce unique iterations and readers must never
// observe a torn snapshot (snapshot columns are written as {i, i}).
func TestIterativeConcurrentSeqlockConsistency(t *testing.T) {
	r := NewIterativeRecord(Payload{0, 0}, 4)
	const writers = 4
	const perW = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	torn := make(chan Payload, 1)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make(Payload, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.ReadRecent(out)
				if out[0] != out[1] {
					select {
					case torn <- out.Clone():
					default:
					}
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				iter := r.iterCounter.Load() + 1
				r.Install(Payload{iter, iter})
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	select {
	case p := <-torn:
		t.Fatalf("reader observed torn snapshot %v", p)
	default:
	}
	if r.Latest() != writers*perW {
		t.Fatalf("counter = %d after %d installs", r.Latest(), writers*perW)
	}
}

// Property: after any sequence of installs, ReadRecent returns the payload
// of the highest installed iteration.
func TestIterativeRecentIsNewestProperty(t *testing.T) {
	f := func(vals []uint64, nSlots uint8) bool {
		n := int(nSlots%8) + 1
		r := NewIterativeRecord(Payload{0}, n)
		for _, v := range vals {
			r.Install(Payload{v})
		}
		out := make(Payload, 1)
		iter := r.ReadRecent(out)
		if iter != uint64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return out[0] == 0
		}
		return out[0] == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIterativeVersionWrapperFields(t *testing.T) {
	rec := NewIterativeVersion(Payload{42}, 2)
	if rec.Iter() == nil {
		t.Fatal("wrapper has no iterative record")
	}
	if rec.Begin() != InfTS {
		t.Fatalf("fresh iterative version Begin = %d, want InfTS", rec.Begin())
	}
	if rec.Payload[0] != 42 {
		t.Fatalf("wrapper payload = %v, want [42]", rec.Payload)
	}
	if rec.Iter().Width() != 1 || rec.Iter().NumVersions() != 2 {
		t.Fatalf("wrapper iterative record shape wrong: width %d versions %d", rec.Iter().Width(), rec.Iter().NumVersions())
	}
}

// TestIterativeRecentAfterRelaxedColumnStores: a multi-version record
// updated only through StoreRelaxed+AddCounter stamps slot 0 but never
// fills the other slots; ReadRecent must still terminate and return the
// newest state instead of probing the empty counter-derived slots forever.
func TestIterativeRecentAfterRelaxedColumnStores(t *testing.T) {
	r := NewIterativeRecord(Payload{0, 0}, 4)
	for i := 1; i <= 7; i++ { // 7 % 4 != 0: the failure mode's shape
		r.StoreRelaxed(0, uint64(i))
		r.StoreRelaxed(1, uint64(2*i))
		r.AddCounter()
	}
	out := make(Payload, 2)
	if iter := r.ReadRecent(out); iter != 7 {
		t.Fatalf("ReadRecent iter = %d, want 7", iter)
	}
	if out[0] != 7 || out[1] != 14 {
		t.Fatalf("ReadRecent payload = %v, want [7 14]", out)
	}
}

package storage

import "math"

// Payload is a fixed-width tuple of 64-bit slots. Each slot holds either an
// int64 or a float64, bit-cast into a uint64, so payload copies are flat
// memcpys and version snapshots never chase pointers. The interpretation of
// each slot is dictated by the table schema that owns the record.
type Payload []uint64

// Clone returns an independent copy of the payload.
func (p Payload) Clone() Payload {
	c := make(Payload, len(p))
	copy(c, p)
	return c
}

// Float64 returns slot i interpreted as a float64.
func (p Payload) Float64(i int) float64 {
	return math.Float64frombits(p[i])
}

// SetFloat64 stores v into slot i.
func (p Payload) SetFloat64(i int, v float64) {
	p[i] = math.Float64bits(v)
}

// Int64 returns slot i interpreted as an int64.
func (p Payload) Int64(i int) int64 {
	return int64(p[i])
}

// SetInt64 stores v into slot i.
func (p Payload) SetInt64(i int, v int64) {
	p[i] = uint64(v)
}

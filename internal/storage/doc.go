// Package storage implements the MVCC storage manager of DB4ML.
//
// The layout follows the Hekaton-style design of Larson et al. that the
// paper builds on (Section 3.1): every record version carries a Begin and an
// End timestamp that define its valid lifetime, plus a pointer to the
// previous version. New versions are installed at the head of a per-row
// version chain with a compare-and-swap, so readers never block writers.
//
// The package extends that layout with iterative records (Section 3.2):
// a record variant owned by one uber-transaction whose payload is a
// fixed-size circular array of intermediate versions ("iterative
// snapshots"). Sub-transactions of the uber-transaction publish a new
// snapshot by bumping the record's IterCounter and writing slot
// IterCounter % len(slots); other transactions cannot see these in-flight
// versions until the uber-transaction commits and sets the record's Begin
// timestamp.
package storage

package storage

import (
	"sync"
	"testing"
)

func TestRecordVisibility(t *testing.T) {
	r := NewRecord(10, Payload{1})
	cases := []struct {
		ts   Timestamp
		want bool
	}{
		{0, false}, {9, false}, {10, true}, {100, true}, {InfTS - 1, true},
	}
	for _, c := range cases {
		if got := r.VisibleAt(c.ts); got != c.want {
			t.Errorf("VisibleAt(%d) = %v, want %v", c.ts, got, c.want)
		}
	}
	r.SetEnd(20)
	if r.VisibleAt(20) {
		t.Error("version visible at its End timestamp")
	}
	if !r.VisibleAt(19) {
		t.Error("version invisible just before its End timestamp")
	}
}

func TestChainInstallStampsEnd(t *testing.T) {
	v1 := NewRecord(5, Payload{1})
	c := NewVersionChain(v1)
	v2 := NewRecord(12, Payload{2})
	if !c.Install(v1, v2) {
		t.Fatal("Install with correct expected head failed")
	}
	if v1.End() != 12 {
		t.Fatalf("superseded version End = %d, want 12", v1.End())
	}
	if c.Head() != v2 || v2.Prev() != v1 {
		t.Fatal("chain head or Prev pointer wrong after Install")
	}
}

func TestChainInstallRejectsStaleExpected(t *testing.T) {
	v1 := NewRecord(5, Payload{1})
	c := NewVersionChain(v1)
	v2 := NewRecord(12, Payload{2})
	if !c.Install(v1, v2) {
		t.Fatal("first Install failed")
	}
	v3 := NewRecord(13, Payload{3})
	if c.Install(v1, v3) {
		t.Fatal("Install succeeded with stale expected head; first-committer-wins violated")
	}
	if c.Head() != v2 {
		t.Fatal("losing Install corrupted chain head")
	}
}

func TestChainVisibleAtTraversal(t *testing.T) {
	c := NewVersionChain(nil)
	if c.VisibleAt(100) != nil {
		t.Fatal("empty chain returned a version")
	}
	var prev *Record
	for i := 1; i <= 5; i++ {
		r := NewRecord(Timestamp(i*10), Payload{uint64(i)})
		if !c.Install(prev, r) {
			t.Fatalf("Install %d failed", i)
		}
		prev = r
	}
	cases := []struct {
		ts   Timestamp
		want uint64 // 0 means nil
	}{
		{5, 0}, {10, 1}, {19, 1}, {20, 2}, {35, 3}, {50, 5}, {1000, 5},
	}
	for _, cse := range cases {
		r := c.VisibleAt(cse.ts)
		switch {
		case cse.want == 0 && r != nil:
			t.Errorf("VisibleAt(%d) = version %v, want none", cse.ts, r.Payload)
		case cse.want != 0 && (r == nil || r.Payload[0] != cse.want):
			t.Errorf("VisibleAt(%d) = %v, want payload %d", cse.ts, r, cse.want)
		}
	}
}

func TestChainConcurrentInstallSingleWinner(t *testing.T) {
	base := NewRecord(1, Payload{0})
	c := NewVersionChain(base)
	const writers = 16
	var wg sync.WaitGroup
	wins := make([]bool, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRecord(Timestamp(100+i), Payload{uint64(i)})
			wins[i] = c.Install(base, r)
		}(i)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d concurrent installs succeeded against the same head, want exactly 1", winners)
	}
	if c.Head().Prev() != base {
		t.Fatal("winning version does not link back to base")
	}
}

func TestIterativeVersionInvisibleUntilPublished(t *testing.T) {
	base := NewRecord(1, Payload{7})
	c := NewVersionChain(base)
	iter := NewIterativeVersion(Payload{7}, 3)
	if !c.Install(base, iter) {
		t.Fatal("Install of iterative version failed")
	}
	if got := c.VisibleAt(50); got != base {
		t.Fatalf("unpublished iterative version visible: got %+v", got)
	}
	iter.Publish(60)
	if got := c.VisibleAt(59); got != base {
		t.Fatal("iterative version visible before its Begin")
	}
	if got := c.VisibleAt(60); got != iter {
		t.Fatal("published iterative version not visible at its Begin")
	}
	if base.End() != 60 {
		t.Fatalf("predecessor End = %d after Publish, want 60", base.End())
	}
}

package storage

import (
	"runtime"
	"sync/atomic"
)

// IterativeRecord is the payload extension an uber-transaction installs on
// every row its sub-transactions update (Figure 4 in the paper). It holds a
// monotonically increasing IterCounter and a fixed-size circular array of
// intermediate versions. Committing sub-transactions bump the counter and
// write slot counter % len(slots); the array never grows, so iterative
// processing allocates nothing.
//
// Each slot is protected by a sequence lock: the slot's seq field is
// (iter+1)<<1 when it stably holds snapshot iter, odd while a writer is
// copying, and 0 while the slot has never been written. Readers copy the
// slot and re-check seq, retrying on a torn read. Writers never wait for
// readers.
//
// For the asynchronous isolation level the seqlock is bypassed entirely:
// InstallRelaxed and ReadRelaxed use per-word atomic stores and loads on
// slot 0, mirroring Hogwild!-style lock-free updates where tuples may be
// observed torn across columns.
type IterativeRecord struct {
	iterCounter atomic.Uint64
	width       int
	slots       []iterSlot
	// data0 caches slots[0].data so the relaxed fast paths reach the
	// payload with one indirection instead of two.
	data0 []uint64
}

type iterSlot struct {
	seq  atomic.Uint64
	data []uint64
}

const emptySlotSeq = 0

func stableSeq(iter uint64) uint64 { return (iter + 1) << 1 }

// NewIterativeRecord builds an iterative record whose snapshot array holds
// nVersions intermediate versions, seeded with initial as snapshot 0 (the
// state every sub-transaction of the uber-transaction sees in its first
// iteration). nVersions must be at least 1.
func NewIterativeRecord(initial Payload, nVersions int) *IterativeRecord {
	if nVersions < 1 {
		panic("storage: iterative record needs at least one version slot")
	}
	r := &IterativeRecord{width: len(initial), slots: make([]iterSlot, nVersions)}
	for i := range r.slots {
		r.slots[i].data = make([]uint64, len(initial))
	}
	copy(r.slots[0].data, initial)
	r.data0 = r.slots[0].data
	r.slots[0].seq.Store(stableSeq(0))
	return r
}

// NewIterativeRecordBatch builds one iterative record per row of a table
// region at once, packing the record headers, slot descriptors, and
// snapshot data into three contiguous slabs. This is the "tuple format"
// optimization the paper's engine relies on (Section 7.2.1): sequential
// rows land on adjacent cache lines, so scanning neighbors' model values
// behaves like the packed arrays of the specialized engines instead of
// chasing per-row allocations. seed(i) provides row i's snapshot 0.
func NewIterativeRecordBatch(n, width, nVersions int, seed func(i int) Payload) []*IterativeRecord {
	if nVersions < 1 {
		panic("storage: iterative record needs at least one version slot")
	}
	recs := make([]IterativeRecord, n)
	slots := make([]iterSlot, n*nVersions)
	data := make([]uint64, n*nVersions*width)
	out := make([]*IterativeRecord, n)
	for i := 0; i < n; i++ {
		r := &recs[i]
		r.width = width
		r.slots = slots[i*nVersions : (i+1)*nVersions : (i+1)*nVersions]
		for v := 0; v < nVersions; v++ {
			off := (i*nVersions + v) * width
			r.slots[v].data = data[off : off+width : off+width]
		}
		copy(r.slots[0].data, seed(i))
		r.data0 = r.slots[0].data
		r.slots[0].seq.Store(stableSeq(0))
		out[i] = r
	}
	return out
}

// Width returns the number of 64-bit columns per snapshot.
func (r *IterativeRecord) Width() int { return r.width }

// NumVersions returns the capacity of the circular snapshot array.
func (r *IterativeRecord) NumVersions() int { return len(r.slots) }

// Latest returns the current IterCounter, i.e. the iteration number of the
// newest committed snapshot.
func (r *IterativeRecord) Latest() uint64 { return r.iterCounter.Load() }

// SlotFor returns the index of the snapshot-array slot iteration iter
// occupies — the slot tag the history recorder (internal/check) attaches to
// install events.
func (r *IterativeRecord) SlotFor(iter uint64) int {
	return int(iter % uint64(len(r.slots)))
}

// Install commits payload as the next intermediate snapshot and returns its
// iteration number. If several sub-transactions install concurrently, each
// gets a distinct iteration; a writer that loses the wrap-around race to a
// newer snapshot on the same slot drops its write, which is the correct
// outcome (the newer snapshot supersedes it).
func (r *IterativeRecord) Install(payload Payload) uint64 {
	iter := r.iterCounter.Add(1)
	slot := &r.slots[iter%uint64(len(r.slots))]
	for {
		cur := slot.seq.Load()
		if cur&1 == 1 {
			runtime.Gosched()
			continue
		}
		if cur != emptySlotSeq && cur >= stableSeq(iter) {
			return iter // a newer snapshot already occupies the slot
		}
		if slot.seq.CompareAndSwap(cur, stableSeq(iter)|1) {
			break
		}
	}
	if h := installHook.Load(); h != nil {
		// Fault injection (see InstallHook): the slot is claimed and odd;
		// stalling here widens the torn-write window readers must survive.
		(*h)(iter, r.SlotFor(iter))
	}
	for i, v := range payload {
		atomic.StoreUint64(&slot.data[i], v)
	}
	slot.seq.Store(stableSeq(iter))
	return iter
}

// ReadVersion copies snapshot iter into out and reports whether that exact
// snapshot was still available (false once it has been overwritten by a
// snapshot len(slots) iterations newer, or while it is being written).
func (r *IterativeRecord) ReadVersion(iter uint64, out Payload) bool {
	slot := &r.slots[iter%uint64(len(r.slots))]
	want := stableSeq(iter)
	for {
		s := slot.seq.Load()
		if s != want {
			return false
		}
		for i := range out {
			out[i] = atomic.LoadUint64(&slot.data[i])
		}
		if slot.seq.Load() == want {
			return true
		}
	}
}

// ReadRecent copies the most recent readable snapshot into out and returns
// its iteration number. It scans for the slot with the newest stable stamp
// rather than deriving the slot from the counter: records updated through
// relaxed column stores advance the counter and stamp slot 0 (AddCounter)
// without ever filling the other slots, so a counter-derived probe could
// target permanently empty slots and spin. Falling back to an older stable
// slot while a writer is mid-copy means it never blocks on writers.
func (r *IterativeRecord) ReadRecent(out Payload) uint64 {
	for {
		best := -1
		var bestSeq uint64
		for i := range r.slots {
			if s := r.slots[i].seq.Load(); s&1 == 0 && s != emptySlotSeq && s > bestSeq {
				bestSeq, best = s, i
			}
		}
		if best >= 0 {
			slot := &r.slots[best]
			for i := range out {
				out[i] = atomic.LoadUint64(&slot.data[i])
			}
			if slot.seq.Load() == bestSeq {
				return bestSeq>>1 - 1
			}
		}
		runtime.Gosched()
	}
}

// ReadAtMost copies the newest snapshot whose iteration does not exceed
// maxIter into out. It returns the snapshot's iteration and false when every
// candidate at or below maxIter has already been overwritten, which callers
// treat as a staleness violation.
func (r *IterativeRecord) ReadAtMost(maxIter uint64, out Payload) (uint64, bool) {
	iter := r.iterCounter.Load()
	if iter > maxIter {
		iter = maxIter
	}
	for i := 0; i < len(r.slots); i++ {
		if r.ReadVersion(iter, out) {
			return iter, true
		}
		if iter == 0 {
			return 0, false
		}
		iter--
	}
	return 0, false
}

// LatestSnapshot returns a copy of the most recent snapshot. Used by the
// uber-transaction at commit time to materialize the final result.
func (r *IterativeRecord) LatestSnapshot() Payload {
	out := make(Payload, r.width)
	r.ReadRecent(out)
	return out
}

// publishStamp advances slot 0's seqlock stamp to iter (monotonically), so
// versioned readers — LatestSnapshot at uber-commit in particular — can
// find snapshots written through the relaxed fast paths. Relaxed and
// seqlock installs are never mixed on one record (the isolation level is
// fixed per uber-transaction), so the CAS cannot corrupt an in-flight
// seqlock write.
func (r *IterativeRecord) publishStamp(iter uint64) {
	slot := &r.slots[0]
	for {
		cur := slot.seq.Load()
		if cur >= stableSeq(iter) {
			return
		}
		if slot.seq.CompareAndSwap(cur, stableSeq(iter)) {
			return
		}
	}
}

// InstallRelaxed publishes payload Hogwild!-style: each column is stored
// with an independent atomic word store into slot 0, with no slot-level
// consistency. The iteration counter is still bumped so staleness can be
// tracked. Used by the asynchronous isolation level's single-version fast
// path (Section 5.1); the record must have been created with a single
// version slot.
func (r *IterativeRecord) InstallRelaxed(payload Payload) uint64 {
	data := r.data0
	for i, v := range payload {
		atomic.StoreUint64(&data[i], v)
	}
	iter := r.iterCounter.Add(1)
	r.publishStamp(iter)
	return iter
}

// ReadRelaxed copies slot 0 into out with per-word atomic loads. The copy
// may be torn across columns, exactly like concurrent Hogwild! readers.
// It returns the iteration counter observed before the copy.
func (r *IterativeRecord) ReadRelaxed(out Payload) uint64 {
	iter := r.iterCounter.Load()
	data := r.data0
	for i := range out {
		out[i] = atomic.LoadUint64(&data[i])
	}
	return iter
}

// StoreRelaxed atomically stores one column of slot 0 without bumping the
// iteration counter. Hot loops (e.g. SGD model updates touching a few
// coordinates) use it to avoid whole-row copies.
func (r *IterativeRecord) StoreRelaxed(col int, bits uint64) {
	atomic.StoreUint64(&r.data0[col], bits)
}

// LoadRelaxed atomically loads one column of slot 0.
func (r *IterativeRecord) LoadRelaxed(col int) uint64 {
	return atomic.LoadUint64(&r.data0[col])
}

// AddCounter bumps the iteration counter by one without writing data, used
// when relaxed column stores already published the values.
func (r *IterativeRecord) AddCounter() uint64 {
	iter := r.iterCounter.Add(1)
	r.publishStamp(iter)
	return iter
}

// NewIterativeVersion wraps an iterative record into a version-chain Record
// that is invisible to other transactions (Begin = InfTS) until the owning
// uber-transaction commits and calls SetBegin with its commit timestamp.
func NewIterativeVersion(initial Payload, nVersions int) *Record {
	rec := &Record{Payload: initial.Clone()}
	rec.iter.Store(NewIterativeRecord(initial, nVersions))
	rec.begin.Store(uint64(InfTS))
	rec.end.Store(uint64(InfTS))
	return rec
}

// NewIterativeVersionBatch is the slab-allocating equivalent of calling
// NewIterativeVersion for every row of a table region (see
// NewIterativeRecordBatch): record headers, iterative records, snapshot
// slots and payloads all live in contiguous memory.
func NewIterativeVersionBatch(n, width, nVersions int, seed func(i int) Payload) []*Record {
	iters := NewIterativeRecordBatch(n, width, nVersions, seed)
	recs := make([]Record, n)
	payloads := make([]uint64, n*width)
	out := make([]*Record, n)
	for i := 0; i < n; i++ {
		r := &recs[i]
		r.Payload = payloads[i*width : (i+1)*width : (i+1)*width]
		copy(r.Payload, seed(i))
		r.iter.Store(iters[i])
		r.begin.Store(uint64(InfTS))
		r.end.Store(uint64(InfTS))
		out[i] = r
	}
	return out
}

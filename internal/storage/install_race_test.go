package storage

import (
	"sync"
	"testing"
)

// TestInstallWrapAroundSupersede hammers a small circular snapshot array
// with concurrent installers so slots wrap around many times, then checks
// the supersede rule: every install gets a distinct iteration, and each
// slot ends up holding exactly the newest snapshot of its residue class —
// a writer that lost the wrap-around race to a newer snapshot must have
// dropped its write rather than clobbering it.
func TestInstallWrapAroundSupersede(t *testing.T) {
	const (
		slots      = 4
		writers    = 8
		perW       = 1000
		total      = writers * perW
		readerProc = 2
	)
	rec := NewIterativeRecord(Payload{0, 0}, slots)

	// payloads[iter] is the (two identical words) payload installed as
	// snapshot iter, recorded by the writer that got that iteration.
	payloads := make([]uint64, total+1)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make(map[uint64]uint64, perW)
			for i := 0; i < perW; i++ {
				v := uint64(w*perW + i + 1)
				iter := rec.Install(Payload{v, v})
				got[iter] = v
			}
			mu.Lock()
			for iter, v := range got {
				if payloads[iter] != 0 {
					mu.Unlock()
					panic("duplicate iteration returned by Install")
				}
				payloads[iter] = v
			}
			mu.Unlock()
		}(w)
	}

	// Concurrent readers: a seqlock snapshot must never be torn, so the two
	// words are always equal no matter how the writers race.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	var torn sync.Once
	var tornVal [2]uint64
	for r := 0; r < readerProc; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			out := make(Payload, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec.ReadRecent(out)
				if out[0] != out[1] {
					torn.Do(func() { tornVal = [2]uint64{out[0], out[1]} })
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	if tornVal != [2]uint64{} {
		t.Fatalf("torn seqlock read: words %d != %d", tornVal[0], tornVal[1])
	}

	if rec.Latest() != total {
		t.Fatalf("Latest = %d, want %d", rec.Latest(), total)
	}
	for iter := uint64(1); iter <= total; iter++ {
		if payloads[iter] == 0 {
			t.Fatalf("iteration %d never returned by any Install", iter)
		}
	}

	// Each slot holds the newest snapshot of its residue class: the top
	// `slots` iterations are readable with the payload their installer
	// recorded, every older iteration has been superseded.
	out := make(Payload, 2)
	for r := 0; r < slots; r++ {
		maxIter := uint64(total - (total-r)%slots)
		if maxIter%slots != uint64(r) {
			t.Fatalf("test bug: maxIter %d not in residue class %d", maxIter, r)
		}
		if !rec.ReadVersion(maxIter, out) {
			t.Fatalf("newest snapshot %d of slot %d not readable", maxIter, r)
		}
		if out[0] != payloads[maxIter] || out[1] != payloads[maxIter] {
			t.Fatalf("slot %d holds %v, want payload %d of iteration %d (superseded write leaked through)",
				r, out, payloads[maxIter], maxIter)
		}
		if rec.ReadVersion(maxIter-slots, out) {
			t.Fatalf("superseded snapshot %d still readable from slot %d", maxIter-slots, r)
		}
	}
}

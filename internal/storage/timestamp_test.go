package storage

import (
	"sync"
	"testing"
)

func TestOracleStartsAtZero(t *testing.T) {
	var o Oracle
	if got := o.Current(); got != 0 {
		t.Fatalf("Current() = %d before any Next(), want 0", got)
	}
}

func TestOracleMonotonic(t *testing.T) {
	var o Oracle
	prev := Timestamp(0)
	for i := 0; i < 1000; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("Next() = %d not greater than previous %d", ts, prev)
		}
		prev = ts
	}
	if o.Current() != prev {
		t.Fatalf("Current() = %d, want %d", o.Current(), prev)
	}
}

func TestOracleConcurrentUnique(t *testing.T) {
	var o Oracle
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	results := make([][]Timestamp, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Timestamp, perG)
			for i := range out {
				out[i] = o.Next()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, goroutines*perG)
	for _, out := range results {
		for _, ts := range out {
			if seen[ts] {
				t.Fatalf("timestamp %d issued twice", ts)
			}
			seen[ts] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), goroutines*perG)
	}
}

func TestInfTSIsMax(t *testing.T) {
	var o Oracle
	for i := 0; i < 100; i++ {
		if ts := o.Next(); ts >= InfTS {
			t.Fatalf("issued timestamp %d reached InfTS", ts)
		}
	}
}

package storage

import "sync/atomic"

// Timestamp is a logical commit timestamp drawn from a global Oracle.
// Timestamp 0 is reserved as "before all transactions".
type Timestamp uint64

// InfTS marks a version as the most recent one: its valid lifetime has no
// upper bound yet.
const InfTS Timestamp = ^Timestamp(0)

// Oracle hands out monotonically increasing timestamps. It is safe for
// concurrent use. The zero value is ready to use and starts at 1.
type Oracle struct {
	counter atomic.Uint64
}

// Next returns a fresh, never-before-seen timestamp.
func (o *Oracle) Next() Timestamp {
	return Timestamp(o.counter.Add(1))
}

// Current returns the most recently issued timestamp, or 0 if none has been
// issued yet. A transaction beginning at Current() sees every version
// committed so far.
func (o *Oracle) Current() Timestamp {
	return Timestamp(o.counter.Load())
}

// AdvanceTo moves the oracle forward so Next never re-issues a timestamp at
// or below ts. Recovery uses it after replaying a WAL tail: replayed commits
// keep their original timestamps, so the oracle must resume above the
// largest one. AdvanceTo never moves the oracle backwards.
func (o *Oracle) AdvanceTo(ts Timestamp) {
	for {
		cur := o.counter.Load()
		if uint64(ts) <= cur || o.counter.CompareAndSwap(cur, uint64(ts)) {
			return
		}
	}
}

// Package madlib reimplements the MADlib baseline of Figure 1: PageRank as
// a driver program that issues one bulk relational query per iteration
// (Hellerstein et al., PVLDB 2012). Each iteration scans the full Edge
// table, joins it with the current rank relation and the out-degree
// relation, aggregates incoming contributions per node, and materializes a
// complete new rank relation before the next iteration may start — bulk
// synchronous parallelism with full materialization, the execution model
// whose cost the paper's introduction quantifies.
//
// The data is read in-database, directly from the Node/Edge ML-tables at a
// snapshot timestamp, through the relational engine's table scans.
package madlib

import (
	"fmt"
	"math"

	"db4ml/internal/relational"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Config tunes the driver loop.
type Config struct {
	// Damping defaults to 0.85.
	Damping float64
	// Epsilon is the max-change convergence threshold; defaults to 1e-9.
	Epsilon float64
	// MaxIters defaults to 100.
	MaxIters int
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	if c.MaxIters == 0 {
		c.MaxIters = 100
	}
	return c
}

// PageRank runs the MADlib-style driver over the Node(NodeID, PR) and
// Edge(NID_From, NID_To) ML-tables as of snapshot ts. It returns the final
// ranks indexed by NodeID (node ids must be dense [0, n)) and the number
// of iterations executed. The table scans pin ts in mgr's active-snapshot
// registry while they run so version GC cannot reclaim the snapshot under
// the driver; mgr may be nil only when no reclaimer runs.
func PageRank(mgr *txn.Manager, node, edge *table.Table, ts storage.Timestamp, cfg Config) ([]float64, int, error) {
	cfg = cfg.withDefaults()
	idCol := node.Schema().MustCol("NodeID")
	fromCol := edge.Schema().MustCol("NID_From")
	toCol := edge.Schema().MustCol("NID_To")

	// SELECT NodeID FROM Node — the driver keeps the id universe.
	nodes := relational.Collect(relational.NewTableScan(mgr, node, ts))
	n := len(nodes.Rows)
	if n == 0 {
		return nil, 0, nil
	}
	// SELECT NID_From, COUNT(*) FROM Edge GROUP BY NID_From.
	outdeg := relational.Collect(relational.NewHashAggregate(
		relational.NewTableScan(mgr, edge, ts), relational.Count, "NID_From", "cnt",
		func(t relational.Tuple) int64 { return t.Int64(fromCol) }, nil))

	// Current rank relation R(NodeID, PR), initialized uniformly.
	rank := &relational.Relation{Cols: []string{"NodeID", "PR"}}
	for _, row := range nodes.Rows {
		id := row.Int64(idCol)
		if id < 0 || id >= int64(n) {
			return nil, 0, fmt.Errorf("madlib: node id %d not dense in [0,%d)", id, n)
		}
		r := make(relational.Tuple, 2)
		r.SetInt64(0, id)
		r.SetFloat64(1, 1/float64(n))
		rank.Rows = append(rank.Rows, r)
	}

	base := (1 - cfg.Damping) / float64(n)
	iters := 0
	for iters < cfg.MaxIters {
		iters++
		// SELECT e.NID_To, SUM(r.PR / d.cnt)
		// FROM Edge e JOIN R r ON e.NID_From = r.NodeID
		//             JOIN outdeg d ON e.NID_From = d.NID_From
		// GROUP BY e.NID_To.
		joined := relational.NewHashJoin(
			relational.NewHashJoin(
				relational.NewTableScan(mgr, edge, ts),
				relational.NewScan(rank),
				func(t relational.Tuple) int64 { return t.Int64(fromCol) },
				func(t relational.Tuple) int64 { return t.Int64(0) },
			),
			relational.NewScan(outdeg),
			func(t relational.Tuple) int64 { return t.Int64(fromCol) },
			func(t relational.Tuple) int64 { return t.Int64(0) },
		)
		// Column layout after the joins:
		// [edge cols][NodeID, PR][NID_From, cnt]
		w := edge.Schema().Width()
		prIdx := w + 1
		cntIdx := w + 3
		incoming := relational.Collect(relational.NewHashAggregate(
			joined, relational.Sum, "NodeID", "incoming",
			func(t relational.Tuple) int64 { return t.Int64(toCol) },
			func(t relational.Tuple) float64 { return t.Float64(prIdx) / t.Float64(cntIdx) },
		))
		// SELECT r.NodeID, base + d * COALESCE(i.incoming, 0)
		// FROM R r LEFT JOIN incoming i ON r.NodeID = i.NodeID,
		// materialized as the next rank relation.
		var buf storage.Payload = make(storage.Payload, 1)
		next := relational.Collect(relational.NewProject(
			relational.NewHashLeftJoin(
				relational.NewScan(rank),
				relational.NewScan(incoming),
				func(t relational.Tuple) int64 { return t.Int64(0) },
				func(t relational.Tuple) int64 { return t.Int64(0) },
			),
			[]string{"NodeID", "PR"},
			[]func(relational.Tuple) uint64{
				func(t relational.Tuple) uint64 { return t[0] },
				func(t relational.Tuple) uint64 {
					buf.SetFloat64(0, base+cfg.Damping*t.Float64(3))
					return buf[0]
				},
			},
		))
		// The driver checks convergence client-side, like MADlib's Python
		// driver routines.
		delta := 0.0
		for i := range next.Rows {
			d := math.Abs(next.Rows[i].Float64(1) - rank.Rows[i].Float64(1))
			if d > delta {
				delta = d
			}
		}
		rank = next
		if delta <= cfg.Epsilon {
			break
		}
	}

	out := make([]float64, n)
	for _, row := range rank.Rows {
		out[row.Int64(0)] = row.Float64(1)
	}
	return out, iters, nil
}

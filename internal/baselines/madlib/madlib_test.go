package madlib

import (
	"testing"

	"db4ml/internal/graph"
	"db4ml/internal/metrics"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/txn"
)

func load(t *testing.T, g *graph.Graph) (*txn.Manager, ranksFn) {
	t.Helper()
	mgr := txn.NewManager()
	node, edge, err := pagerank.LoadTables(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, func(cfg Config) ([]float64, int) {
		ranks, iters, err := PageRank(mgr, node, edge, mgr.Stable(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ranks, iters
	}
}

type ranksFn func(Config) ([]float64, int)

func TestMatchesReferenceSmall(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 0}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.PageRankRef(g, 0.85, 1e-12, 500)
	_, run := load(t, g)
	got, iters := run(Config{Epsilon: 1e-12, MaxIters: 500})
	if iters < 2 {
		t.Fatalf("converged after %d iterations", iters)
	}
	if d := metrics.MaxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("max diff vs reference = %v", d)
	}
}

func TestMatchesReferenceGenerated(t *testing.T) {
	g := graph.BarabasiAlbert(400, 6, 11)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 200)
	_, run := load(t, g)
	got, _ := run(Config{Epsilon: 1e-10, MaxIters: 200})
	if d := metrics.MaxAbsDiff(want, got); d > 1e-8 {
		t.Fatalf("max diff vs reference = %v", d)
	}
}

func TestDanglingTargetsGetBaseRank(t *testing.T) {
	// Node 2 has no incoming edges: its rank must be exactly (1-d)/N.
	g, _ := graph.FromEdges(3, []graph.Edge{{From: 2, To: 0}, {From: 0, To: 1}, {From: 1, To: 0}})
	_, run := load(t, g)
	got, _ := run(Config{Epsilon: 1e-12, MaxIters: 300})
	want := (1 - 0.85) / 3
	if diff := got[2] - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("no-incoming node rank = %v, want %v", got[2], want)
	}
}

func TestMaxItersCap(t *testing.T) {
	g := graph.ErdosRenyi(100, 400, 2)
	_, run := load(t, g)
	_, iters := run(Config{Epsilon: 0, MaxIters: 4})
	if iters != 4 {
		t.Fatalf("iters = %d, want 4", iters)
	}
}

func TestSnapshotIsolationOfDriver(t *testing.T) {
	// The driver reads a fixed snapshot: OLTP updates during the run are
	// invisible (here: committed before the driver starts reading vs after
	// the snapshot was taken).
	g := graph.ErdosRenyi(50, 200, 4)
	mgr := txn.NewManager()
	node, edge, err := pagerank.LoadTables(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	snap := mgr.Stable()
	// Commit a rank change after the snapshot.
	tx := mgr.Begin()
	p, _ := tx.Read(node, 0)
	p.SetFloat64(1, 42)
	if err := tx.Write(node, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ranksA, _, err := PageRank(mgr, node, edge, snap, Config{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 100)
	if d := metrics.MaxAbsDiff(want, ranksA); d > 1e-8 {
		t.Fatalf("snapshot run diverged: %v", d)
	}
}

func TestEmptyTables(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	_, run := load(t, g)
	ranks, iters := run(Config{})
	if len(ranks) != 0 || iters != 0 {
		t.Fatal("empty input produced output")
	}
}

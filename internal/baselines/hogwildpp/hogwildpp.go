// Package hogwildpp reimplements the Hogwild++ baseline (Zhang et al.,
// ICDM 2016): decentralized asynchronous SGD for NUMA machines. Instead of
// one shared model, every NUMA cluster trains its own replica on its own
// partition of the data; a token circulates around the cluster ring, and
// the cluster holding the token periodically mixes its replica with its
// successor's (weighted averaging with decaying weight), which is how
// updates propagate between sockets without cross-socket write traffic.
// The final model is the average of all replicas.
package hogwildpp

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"db4ml/internal/numa"
	"db4ml/internal/svm"
)

// replica is one cluster's model with relaxed-atomic access.
type replica []uint64

func (m replica) Get(i int32) float64 {
	return math.Float64frombits(atomic.LoadUint64(&m[i]))
}

func (m replica) Add(i int32, delta float64) {
	v := math.Float64frombits(atomic.LoadUint64(&m[i]))
	atomic.StoreUint64(&m[i], math.Float64bits(v+delta))
}

// Config mirrors the Hogwild++ settings the paper reports (Section 7.3).
type Config struct {
	Workers int
	// Topology fixes the cluster layout; defaults to
	// numa.PaperTopology(Workers).
	Topology numa.Topology
	Epochs   int
	StepSize float64
	// StepDecay multiplies the step size after each epoch.
	StepDecay float64
	Lambda    float64
	// Beta is the replica mixing weight; defaults to 0.5 (the balanced
	// averaging of the Hogwild++ paper's default schedule).
	Beta float64
	// SyncInterval is the number of samples a cluster processes between
	// token checks; defaults to 1024.
	SyncInterval int
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Topology.Regions == 0 {
		c.Topology = numa.PaperTopology(c.Workers)
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.StepSize == 0 {
		c.StepSize = 5e-2
	}
	if c.StepDecay == 0 {
		c.StepDecay = 0.8
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 1024
	}
	return c
}

// Train runs Hogwild++ and returns the averaged final model.
func Train(train []svm.Sample, features int, cfg Config) svm.VecModel {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		return make(svm.VecModel, features)
	}
	clusters := cfg.Topology.Regions
	replicas := make([]replica, clusters)
	for c := range replicas {
		replicas[c] = make(replica, features)
	}
	// token holds the id of the cluster allowed to mix next.
	var token atomic.Int32

	workers := cfg.Workers
	if workers > len(train) {
		workers = len(train)
	}
	top := numa.NewTopology(clusters, workers)
	clusters = top.Regions
	per := len(train) / workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if w == workers-1 {
			hi = len(train)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cluster := top.RegionOf(w)
			model := replicas[cluster]
			// The first worker of each cluster performs the token mixing.
			mixer := w == cluster
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			gamma := cfg.StepSize
			sinceSync := 0
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for i := lo; i < hi; i++ {
					s := train[lo+rng.Intn(hi-lo)]
					svm.Step(model, s, gamma, cfg.Lambda)
					sinceSync++
					if mixer && sinceSync >= cfg.SyncInterval {
						sinceSync = 0
						if int(token.Load()) == cluster && clusters > 1 {
							mix(model, replicas[(cluster+1)%clusters], cfg.Beta)
							token.Store(int32((cluster + 1) % clusters))
						}
					}
				}
				gamma *= cfg.StepDecay
			}
		}(w, lo, hi)
	}
	wg.Wait()

	out := make(svm.VecModel, features)
	for i := range out {
		sum := 0.0
		for c := range replicas {
			sum += replicas[c].Get(int32(i))
		}
		out[i] = sum / float64(len(replicas))
	}
	return out
}

// mix blends src into dst and pulls src toward the blend: after mixing,
// dst' = (1-β)·dst + β·src and src' = β·dst + (1-β)·src. The stores are
// relaxed — training continues concurrently, like Hogwild++'s lock-free
// token exchange.
func mix(src, dst replica, beta float64) {
	for i := range dst {
		d := dst.Get(int32(i))
		s := src.Get(int32(i))
		atomic.StoreUint64(&dst[i], math.Float64bits((1-beta)*d+beta*s))
		atomic.StoreUint64(&src[i], math.Float64bits(beta*d+(1-beta)*s))
	}
}

package hogwildpp

import (
	"testing"

	"db4ml/internal/numa"
	"db4ml/internal/svm"
)

func dataset(t *testing.T) ([]svm.Sample, []svm.Sample, int) {
	t.Helper()
	const features = 30
	train, test := svm.Generate(svm.GenSpec{
		Train: 4000, Test: 800, Features: features, Density: 1, Noise: 0.05, Seed: 23,
	})
	return train, test, features
}

func TestTrainLearnsSingleCluster(t *testing.T) {
	train, test, features := dataset(t)
	m := Train(train, features, Config{
		Workers: 2, Topology: numa.NewTopology(1, 2),
		Epochs: 15, Lambda: 1e-5, Seed: 1,
	})
	if acc := svm.Accuracy(m, test); acc < 0.85 {
		t.Fatalf("single-cluster accuracy = %v", acc)
	}
}

func TestTrainLearnsMultiCluster(t *testing.T) {
	train, test, features := dataset(t)
	m := Train(train, features, Config{
		Workers: 4, Topology: numa.NewTopology(4, 4),
		Epochs: 15, Lambda: 1e-5, Seed: 1, SyncInterval: 256,
	})
	if acc := svm.Accuracy(m, test); acc < 0.85 {
		t.Fatalf("multi-cluster accuracy = %v (token mixing failed to propagate)", acc)
	}
}

func TestReplicaMixingPropagates(t *testing.T) {
	// With token mixing disabled (huge interval), per-cluster replicas
	// trained on label-disjoint partitions disagree; mixing must pull the
	// averaged model above either extreme's test accuracy on the full
	// distribution. Here we simply check mix() math.
	a := make(replica, 2)
	b := make(replica, 2)
	a.Add(0, 1.0)
	b.Add(0, 3.0)
	mix(a, b, 0.5)
	if got := b.Get(0); got != 2.0 {
		t.Fatalf("dst after mix = %v, want 2.0", got)
	}
	if got := a.Get(0); got != 2.0 {
		t.Fatalf("src after mix = %v, want 2.0", got)
	}
	// Asymmetric beta.
	a2 := make(replica, 1)
	b2 := make(replica, 1)
	a2.Add(0, 1.0) // src
	mix(a2, b2, 0.25)
	if got := b2.Get(0); got != 0.25 {
		t.Fatalf("dst after beta=0.25 mix = %v, want 0.25", got)
	}
}

func TestFinalModelIsReplicaAverage(t *testing.T) {
	train, _ := svm.Generate(svm.GenSpec{Train: 64, Features: 8, Density: 1, Seed: 5})
	m := Train(train, 8, Config{
		Workers: 2, Topology: numa.NewTopology(2, 2),
		Epochs: 1, Seed: 5, SyncInterval: 1 << 30, // no mixing
	})
	if len(m) != 8 {
		t.Fatalf("model width = %d", len(m))
	}
}

func TestTrainEmpty(t *testing.T) {
	m := Train(nil, 3, Config{Workers: 2})
	if len(m) != 3 {
		t.Fatal("empty training returned wrong width")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epochs != 20 || c.StepSize != 5e-2 || c.StepDecay != 0.8 || c.Beta != 0.5 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

// Package galois reimplements the baseline the paper compares PageRank
// against: Galois' synchronous pull-based PageRank (Nguyen et al., SIGMOD
// 2013) — a hand-tuned graph engine operating on plain arrays with no
// transactional machinery at all. Workers pull the previous iteration's
// ranks of a node's in-neighbors, double-buffered, with chunked dynamic
// load balancing and a barrier per iteration; the data is range-partitioned
// across NUMA regions exactly like DB4ML's PageRank so the comparison
// isolates the transactional overhead (Section 7.2).
package galois

import (
	"runtime"
	"sync"
	"sync/atomic"

	"db4ml/internal/graph"
)

// Config tunes the engine.
type Config struct {
	// Workers defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Damping is PageRank's d; defaults to 0.85.
	Damping float64
	// Epsilon is the per-node convergence threshold; defaults to 1e-9.
	Epsilon float64
	// MaxIters caps the iteration count; defaults to 100.
	MaxIters int
	// ChunkSize is the dynamic scheduling granularity; defaults to 256
	// nodes, mirroring DB4ML's batch size so scheduling overheads match.
	ChunkSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	if c.MaxIters == 0 {
		c.MaxIters = 100
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256
	}
	return c
}

// PageRank runs synchronous pull-based PageRank and returns the ranks and
// the number of iterations executed.
func PageRank(g *graph.Graph, cfg Config) ([]float64, int) {
	cfg = cfg.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil, 0
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)

	iters := 0
	for iters < cfg.MaxIters {
		iters++
		var cursor atomic.Int64
		var movedFlag atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				moved := false
				for {
					lo := int(cursor.Add(int64(cfg.ChunkSize))) - cfg.ChunkSize
					if lo >= n {
						break
					}
					hi := lo + cfg.ChunkSize
					if hi > n {
						hi = n
					}
					for v := int32(lo); int(v) < hi; v++ {
						sum := 0.0
						for _, u := range g.InNeighbors(v) {
							sum += cur[u] / float64(g.OutDegree(u))
						}
						nv := base + cfg.Damping*sum
						next[v] = nv
						if diff := nv - cur[v]; diff > cfg.Epsilon || diff < -cfg.Epsilon {
							moved = true
						}
					}
				}
				if moved {
					movedFlag.Store(true)
				}
			}()
		}
		wg.Wait()
		cur, next = next, cur
		if !movedFlag.Load() {
			break
		}
	}
	return cur, iters
}

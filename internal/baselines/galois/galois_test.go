package galois

import (
	"testing"

	"db4ml/internal/graph"
	"db4ml/internal/metrics"
)

func TestMatchesReferenceSmall(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 0}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.PageRankRef(g, 0.85, 1e-12, 500)
	got, iters := PageRank(g, Config{Workers: 2, Epsilon: 1e-12, MaxIters: 500})
	if iters < 2 {
		t.Fatalf("converged after %d iterations", iters)
	}
	if d := metrics.MaxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("max diff vs reference = %v", d)
	}
}

func TestMatchesReferenceGenerated(t *testing.T) {
	g := graph.BarabasiAlbert(1500, 10, 3)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 200)
	for _, workers := range []int{1, 4} {
		got, _ := PageRank(g, Config{Workers: workers, Epsilon: 1e-10, MaxIters: 200})
		if d := metrics.MaxAbsDiff(want, got); d > 1e-8 {
			t.Fatalf("workers=%d: max diff vs reference = %v", workers, d)
		}
		if acc := metrics.PairwiseAccuracy(want, got, 0, 1); acc < 0.9999 {
			t.Fatalf("workers=%d: pairwise accuracy %v", workers, acc)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// Synchronous pull PageRank is deterministic: worker count must not
	// change the result at all (double buffering, barrier per round).
	g := graph.ErdosRenyi(800, 4000, 5)
	a, itersA := PageRank(g, Config{Workers: 1, Epsilon: 1e-10})
	b, itersB := PageRank(g, Config{Workers: 3, Epsilon: 1e-10})
	if itersA != itersB {
		t.Fatalf("iteration counts differ: %d vs %d", itersA, itersB)
	}
	if d := metrics.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("results differ across worker counts by %v", d)
	}
}

func TestMaxItersCap(t *testing.T) {
	g := graph.ErdosRenyi(200, 1000, 5)
	_, iters := PageRank(g, Config{Workers: 2, Epsilon: 0, MaxIters: 7})
	if iters != 7 {
		t.Fatalf("iters = %d, want cap 7", iters)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	ranks, iters := PageRank(g, Config{})
	if ranks != nil || iters != 0 {
		t.Fatal("empty graph produced output")
	}
}

func TestChunkSizeIrrelevantToResult(t *testing.T) {
	g := graph.BarabasiAlbert(500, 6, 9)
	a, _ := PageRank(g, Config{Workers: 2, ChunkSize: 1, Epsilon: 1e-10})
	b, _ := PageRank(g, Config{Workers: 2, ChunkSize: 4096, Epsilon: 1e-10})
	if d := metrics.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("chunk size changed result by %v", d)
	}
}

package hogwild

import (
	"testing"

	"db4ml/internal/svm"
)

func dataset(t *testing.T) ([]svm.Sample, []svm.Sample, int) {
	t.Helper()
	const features = 30
	train, test := svm.Generate(svm.GenSpec{
		Train: 4000, Test: 800, Features: features, Density: 1, Noise: 0.05, Seed: 17,
	})
	return train, test, features
}

func TestModelAtomicRoundTrip(t *testing.T) {
	m := NewModel(4)
	m.Add(2, 1.5)
	m.Add(2, 1.0)
	if got := m.Get(2); got != 2.5 {
		t.Fatalf("Get = %v", got)
	}
	snap := m.Snapshot()
	if snap[2] != 2.5 || len(snap) != 4 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestTrainLearns(t *testing.T) {
	train, test, features := dataset(t)
	m := Train(train, features, Config{Workers: 4, Epochs: 15, Lambda: 1e-5, Seed: 1})
	if acc := svm.Accuracy(m.Snapshot(), test); acc < 0.85 {
		t.Fatalf("test accuracy = %v", acc)
	}
}

func TestSingleWorkerMatchesMultiWorkerQuality(t *testing.T) {
	train, test, features := dataset(t)
	m1 := Train(train, features, Config{Workers: 1, Epochs: 10, Lambda: 1e-5, Seed: 1})
	m4 := Train(train, features, Config{Workers: 4, Epochs: 10, Lambda: 1e-5, Seed: 1})
	a1 := svm.Accuracy(m1.Snapshot(), test)
	a4 := svm.Accuracy(m4.Snapshot(), test)
	if a4 < a1-0.05 {
		t.Fatalf("parallel accuracy %v far below sequential %v", a4, a1)
	}
}

func TestTrainEmpty(t *testing.T) {
	m := Train(nil, 5, Config{Workers: 2})
	for i := range m {
		if m.Get(int32(i)) != 0 {
			t.Fatal("training on empty data moved the model")
		}
	}
}

func TestMoreWorkersThanSamples(t *testing.T) {
	train, _ := svm.Generate(svm.GenSpec{Train: 3, Features: 4, Density: 1, Seed: 2})
	// Must not panic or divide by zero.
	Train(train, 4, Config{Workers: 16, Epochs: 2, Seed: 2})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epochs != 20 || c.StepSize != 5e-2 || c.StepDecay != 0.8 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
}

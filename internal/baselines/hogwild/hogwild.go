// Package hogwild reimplements the Hogwild! baseline (Niu et al., NIPS
// 2011): lock-free parallel SGD where every worker updates one shared
// model vector with no coordination whatsoever. The original C++ uses
// plain racy stores; here each parameter is a 64-bit word accessed with
// relaxed atomics, which keeps the lock-free read-modify-write races (lost
// updates and all) while staying clean under the Go race detector.
//
// Hogwild! is deliberately NUMA-oblivious — the single shared model is the
// reason it stops scaling across sockets in Figures 12 and 13.
package hogwild

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"db4ml/internal/svm"
)

// Model is a shared parameter vector with relaxed-atomic access. It
// implements svm.Model; concurrent Adds may lose updates, exactly like
// Hogwild!'s unsynchronized writes.
type Model []uint64

// NewModel allocates a zeroed model with the given number of features.
func NewModel(features int) Model { return make(Model, features) }

// Get returns parameter i.
func (m Model) Get(i int32) float64 {
	return math.Float64frombits(atomic.LoadUint64(&m[i]))
}

// Add performs a racy read-modify-write of parameter i.
func (m Model) Add(i int32, delta float64) {
	v := math.Float64frombits(atomic.LoadUint64(&m[i]))
	atomic.StoreUint64(&m[i], math.Float64bits(v+delta))
}

// Snapshot copies the model into a plain vector for evaluation.
func (m Model) Snapshot() svm.VecModel {
	out := make(svm.VecModel, len(m))
	for i := range m {
		out[i] = m.Get(int32(i))
	}
	return out
}

// Config mirrors the paper's SGD setup (Algorithm 3): 20 epochs, step size
// 5e-2, step decay 0.8.
type Config struct {
	Workers   int
	Epochs    int
	StepSize  float64
	StepDecay float64
	Lambda    float64
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.StepSize == 0 {
		c.StepSize = 5e-2
	}
	if c.StepDecay == 0 {
		c.StepDecay = 0.8
	}
	return c
}

// Train runs Hogwild! over train and returns the shared model. Each worker
// owns a contiguous range of the (pre-shuffled) samples and per epoch draws
// |range| samples from it uniformly at random, matching the paper's
// randomSample(lowKey, highKey) loop.
func Train(train []svm.Sample, features int, cfg Config) Model {
	cfg = cfg.withDefaults()
	model := NewModel(features)
	if len(train) == 0 {
		return model
	}
	workers := cfg.Workers
	if workers > len(train) {
		workers = len(train)
	}
	per := len(train) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if w == workers-1 {
			hi = len(train)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			gamma := cfg.StepSize
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for i := lo; i < hi; i++ {
					s := train[lo+rng.Intn(hi-lo)]
					svm.Step(model, s, gamma, cfg.Lambda)
				}
				gamma *= cfg.StepDecay
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return model
}

package exec

import (
	"encoding/json"
	"testing"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/storage"
)

// TestSnapshotMatchesStats: the telemetry snapshot of an asynchronous run
// must agree with the engine's own Stats and carry gauge samples plus a
// convergence series ending at zero live sub-transactions.
func TestSnapshotMatchesStats(t *testing.T) {
	const n, target = 300, 8
	subs, _ := newCounterSubs(n, target)
	o := obs.New()
	e := New(Config{Workers: 4, BatchSize: 16, Observer: o},
		isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)

	snap, ok := e.Snapshot()
	if !ok {
		t.Fatal("Snapshot() not available although an observer is configured")
	}
	if snap.Counters.Executions != stats.Executions {
		t.Fatalf("snapshot executions %d != stats %d", snap.Counters.Executions, stats.Executions)
	}
	if snap.Counters.Commits != stats.Commits {
		t.Fatalf("snapshot commits %d != stats %d", snap.Counters.Commits, stats.Commits)
	}
	if snap.Counters.Rollbacks != stats.Rollbacks {
		t.Fatalf("snapshot rollbacks %d != stats %d", snap.Counters.Rollbacks, stats.Rollbacks)
	}
	if snap.Workers != 4 || len(snap.PerWorker) != 4 {
		t.Fatalf("snapshot workers = %d / %d shards", snap.Workers, len(snap.PerWorker))
	}
	// Per-worker counts must add up to the totals, and only workers with
	// executions may report busy time.
	var perWorkerExecs uint64
	for _, ws := range snap.PerWorker {
		perWorkerExecs += ws.Executions
		if ws.Executions == 0 && ws.BusyNanos > 0 {
			t.Fatalf("worker %d busy %dns without executions", ws.Worker, ws.BusyNanos)
		}
	}
	if perWorkerExecs != snap.Counters.Executions {
		t.Fatalf("per-worker executions %d != total %d", perWorkerExecs, snap.Counters.Executions)
	}
	if snap.QueueDepth.Samples == 0 {
		t.Fatal("no queue-depth samples recorded")
	}
	if snap.LiveSubs.Samples == 0 || snap.LiveSubs.Max > n {
		t.Fatalf("live gauge samples=%d max=%d", snap.LiveSubs.Samples, snap.LiveSubs.Max)
	}
	if len(snap.Convergence) < 2 {
		t.Fatalf("convergence series too short: %d points", len(snap.Convergence))
	}
	first, last := snap.Convergence[0], snap.Convergence[len(snap.Convergence)-1]
	if first.Live != n {
		t.Fatalf("first sample live = %d, want %d", first.Live, n)
	}
	if last.Live != 0 || last.Commits != stats.Commits {
		t.Fatalf("final sample = %+v, want live 0 / commits %d", last, stats.Commits)
	}
	// The snapshot must round-trip as JSON.
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters.Commits != snap.Counters.Commits {
		t.Fatal("JSON round-trip lost counters")
	}
}

// TestSnapshotRollbackSplit: user-requested rollbacks and staleness
// rollbacks are reported separately.
func TestSnapshotRollbackSplit(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	o := obs.New()
	e := New(Config{Workers: 2, Observer: o}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run([]itx.Sub{&rollbackSub{rec: rec, failures: 3}}, nil)
	if stats.Rollbacks != 3 {
		t.Fatalf("Rollbacks = %d", stats.Rollbacks)
	}
	snap := o.Snapshot()
	if snap.Counters.UserRollbacks != 3 || snap.Counters.StalenessRollbacks != 0 {
		t.Fatalf("rollback split = user %d / staleness %d, want 3 / 0",
			snap.Counters.UserRollbacks, snap.Counters.StalenessRollbacks)
	}
}

// TestSnapshotSyncRounds: the synchronous scheduler records one convergence
// point per barrier round (plus the initial sample).
func TestSnapshotSyncRounds(t *testing.T) {
	const n, target = 40, 6
	subs, _ := newCounterSubs(n, target)
	o := obs.New()
	e := New(Config{Workers: 3, Observer: o}, isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	snap := o.Snapshot()
	if want := int(stats.Rounds) + 1; len(snap.Convergence) != want {
		t.Fatalf("sync series has %d points, want %d (rounds+initial)", len(snap.Convergence), want)
	}
	if last := snap.Convergence[len(snap.Convergence)-1]; last.Live != 0 {
		t.Fatalf("final sync sample live = %d", last.Live)
	}
	if snap.Counters.Executions != stats.Executions || snap.Counters.Commits != stats.Commits {
		t.Fatal("sync snapshot counters diverge from stats")
	}
}

// TestSnapshotWithoutObserver: no observer, no snapshot — and the run is
// unaffected.
func TestSnapshotWithoutObserver(t *testing.T) {
	subs, _ := newCounterSubs(10, 3)
	e := New(Config{Workers: 2}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	if stats.Commits != 30 {
		t.Fatalf("Commits = %d", stats.Commits)
	}
	if _, ok := e.Snapshot(); ok {
		t.Fatal("Snapshot() reported ok without an observer")
	}
}

// alwaysRollbackSub never commits — the perpetual-rollback shape (e.g. a
// sub-transaction SSP-throttled behind a straggler that never advances)
// that used to livelock Run under MaxIterations.
type alwaysRollbackSub struct{}

func (alwaysRollbackSub) Begin(ctx *itx.Ctx)               {}
func (alwaysRollbackSub) Execute(ctx *itx.Ctx)             {}
func (alwaysRollbackSub) Validate(ctx *itx.Ctx) itx.Action { return itx.Rollback }

// TestAlwaysRollbackTerminates is the livelock regression test: a
// sub-transaction that rolls back forever commits zero iterations, so the
// committed-iteration cap alone never fires; the attempt backstop must
// retire it and Run must return.
func TestAlwaysRollbackTerminates(t *testing.T) {
	done := make(chan Stats, 1)
	o := obs.New()
	go func() {
		e := New(Config{Workers: 2, MaxIterations: 5, Observer: o},
			isolation.Options{Level: isolation.Asynchronous})
		done <- e.Run([]itx.Sub{alwaysRollbackSub{}}, nil)
	}()
	var stats Stats
	select {
	case stats = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run livelocked on an always-rollback sub-transaction")
	}
	if stats.Commits != 0 {
		t.Fatalf("Commits = %d, want 0", stats.Commits)
	}
	if stats.ForcedStops != 1 {
		t.Fatalf("ForcedStops = %d, want 1", stats.ForcedStops)
	}
	// The default backstop is MaxIterations×64 attempts.
	if stats.Rollbacks != 5*64 {
		t.Fatalf("Rollbacks = %d, want %d", stats.Rollbacks, 5*64)
	}
	snap := o.Snapshot()
	if snap.Counters.ForcedStopAttempts != 1 || snap.Counters.ForcedStopIterations != 0 {
		t.Fatalf("forced-stop split = iters %d / attempts %d, want 0 / 1",
			snap.Counters.ForcedStopIterations, snap.Counters.ForcedStopAttempts)
	}
}

// TestMaxAttemptsExplicit: an explicit attempt cap works on its own, without
// MaxIterations.
func TestMaxAttemptsExplicit(t *testing.T) {
	e := New(Config{Workers: 1, MaxAttempts: 7}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run([]itx.Sub{alwaysRollbackSub{}}, nil)
	if stats.Executions != 7 || stats.ForcedStops != 1 {
		t.Fatalf("Executions = %d, ForcedStops = %d; want 7, 1", stats.Executions, stats.ForcedStops)
	}
}

// TestMaxIterationsStillCapsCommits: the attempt backstop must not fire
// before the iteration cap on a sub-transaction that commits normally.
func TestMaxIterationsStillCapsCommits(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	e := New(Config{Workers: 2, MaxIterations: 12}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run([]itx.Sub{&neverDoneSub{rec: rec}}, nil)
	if stats.Commits != 12 || stats.ForcedStops != 1 {
		t.Fatalf("Commits = %d, ForcedStops = %d", stats.Commits, stats.ForcedStops)
	}
}

// slowCounterSub commits target iterations, sleeping a little per Execute
// so work-stealing windows reliably exist.
type slowCounterSub struct {
	target uint64
	d      time.Duration
}

func (s *slowCounterSub) Begin(ctx *itx.Ctx)   {}
func (s *slowCounterSub) Execute(ctx *itx.Ctx) { time.Sleep(s.d) }
func (s *slowCounterSub) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration()+1 >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// TestWorkStealingDrainsSkewedRegion: with every sub-transaction routed to
// region 0, region 1's workers must steal instead of spinning idle, and the
// run must still complete exactly.
func TestWorkStealingDrainsSkewedRegion(t *testing.T) {
	const n, target = 64, 6
	subs := make([]itx.Sub, n)
	for i := range subs {
		subs[i] = &slowCounterSub{target: target, d: 200 * time.Microsecond}
	}
	o := obs.New()
	top := numa.NewTopology(2, 4)
	e := New(Config{Workers: 4, Topology: top, BatchSize: 1, Observer: o},
		isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, func(i int) int { return 0 }) // all work in region 0
	if stats.Commits != n*target {
		t.Fatalf("Commits = %d, want %d", stats.Commits, n*target)
	}
	if stats.Steals == 0 {
		t.Fatal("no steals recorded although region 1 was idle")
	}
	snap := o.Snapshot()
	if snap.Counters.Steals != stats.Steals {
		t.Fatalf("snapshot steals %d != stats %d", snap.Counters.Steals, stats.Steals)
	}
	// Only region-1 workers (ids 1 and 3 under the round-robin pinning) had
	// an empty home queue; every steal must come from them.
	for _, ws := range snap.PerWorker {
		if top.RegionOf(ws.Worker) == 0 && ws.Steals > 0 {
			t.Fatalf("home-region worker %d recorded %d steals", ws.Worker, ws.Steals)
		}
	}
}

// TestDisableWorkStealingConfinesWork: with stealing off and all work in
// region 0, region 1's workers stay idle (no steals, no executions) and the
// run still completes.
func TestDisableWorkStealingConfinesWork(t *testing.T) {
	subs, _ := newCounterSubs(16, 4)
	o := obs.New()
	top := numa.NewTopology(2, 4)
	e := New(Config{Workers: 4, Topology: top, BatchSize: 2, DisableWorkStealing: true, Observer: o},
		isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, func(i int) int { return 0 })
	if stats.Commits != 16*4 {
		t.Fatalf("Commits = %d", stats.Commits)
	}
	if stats.Steals != 0 {
		t.Fatalf("Steals = %d with stealing disabled", stats.Steals)
	}
	snap := o.Snapshot()
	for _, ws := range snap.PerWorker {
		if top.RegionOf(ws.Worker) == 1 && ws.Executions > 0 {
			t.Fatalf("region-1 worker %d executed %d subs with stealing disabled", ws.Worker, ws.Executions)
		}
	}
}

// TestAvgWorkerBusyIgnoresIdleWorkers: the average covers only workers that
// actually processed something (satellite fix for the Figure-9 per-worker
// runtime skew).
func TestAvgWorkerBusyIgnoresIdleWorkers(t *testing.T) {
	c := newCounters(4)
	c.busy[0].Store(int64(100 * time.Millisecond))
	c.busy[2].Store(int64(300 * time.Millisecond))
	var stats Stats
	c.into(&stats)
	if stats.AvgWorkerBusy != 200*time.Millisecond {
		t.Fatalf("AvgWorkerBusy = %v, want 200ms (average over the 2 active workers)", stats.AvgWorkerBusy)
	}
	if stats.MaxWorkerBusy != 300*time.Millisecond {
		t.Fatalf("MaxWorkerBusy = %v", stats.MaxWorkerBusy)
	}
}

// TestAvgWorkerBusyEndToEnd: with far more workers than work, idle workers
// must not drag the average toward zero.
func TestAvgWorkerBusyEndToEnd(t *testing.T) {
	subs := []itx.Sub{&slowCounterSub{target: 4, d: 2 * time.Millisecond}}
	e := New(Config{Workers: 8, BatchSize: 1}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	// One sub × 4 iterations × 2ms runs on few workers; averaging over all
	// 8 would report < 1ms.
	if stats.AvgWorkerBusy < 2*time.Millisecond {
		t.Fatalf("AvgWorkerBusy = %v, idle workers still dilute the average", stats.AvgWorkerBusy)
	}
}

package exec

import (
	"sync/atomic"
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/storage"
)

// counterSub increments its record once per iteration until it reaches
// target, then returns Done.
type counterSub struct {
	rec    *storage.IterativeRecord
	target uint64
	val    uint64
	buf    storage.Payload
}

func (s *counterSub) Begin(ctx *itx.Ctx) {
	s.buf = make(storage.Payload, 1)
}

func (s *counterSub) Execute(ctx *itx.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.val = s.buf[0] + 1
	s.buf[0] = s.val
	ctx.Write(s.rec, s.buf)
}

func (s *counterSub) Validate(ctx *itx.Ctx) itx.Action {
	if s.val >= s.target {
		return itx.Done
	}
	return itx.Commit
}

func newCounterSubs(n int, target uint64) ([]itx.Sub, []*storage.IterativeRecord) {
	subs := make([]itx.Sub, n)
	recs := make([]*storage.IterativeRecord, n)
	for i := range subs {
		recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 1)
		subs[i] = &counterSub{rec: recs[i], target: target}
	}
	return subs, recs
}

func TestAsyncRunsToConvergence(t *testing.T) {
	const n, target = 500, 10
	subs, recs := newCounterSubs(n, target)
	e := New(Config{Workers: 4, BatchSize: 32}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	out := make(storage.Payload, 1)
	for i, rec := range recs {
		rec.ReadRelaxed(out)
		if out[0] != target {
			t.Fatalf("record %d = %d, want %d", i, out[0], target)
		}
	}
	if stats.Commits != n*target {
		t.Fatalf("Commits = %d, want %d", stats.Commits, n*target)
	}
	if stats.Executions != stats.Commits+stats.Rollbacks {
		t.Fatalf("Executions %d != Commits %d + Rollbacks %d", stats.Executions, stats.Commits, stats.Rollbacks)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
}

func TestSyncRunsToConvergence(t *testing.T) {
	const n, target = 100, 7
	subs, recs := newCounterSubs(n, target)
	e := New(Config{Workers: 4, BatchSize: 16}, isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	out := make(storage.Payload, 1)
	for i, rec := range recs {
		rec.ReadRelaxed(out)
		if out[0] != target {
			t.Fatalf("record %d = %d, want %d", i, out[0], target)
		}
	}
	if stats.Rounds != target {
		t.Fatalf("Rounds = %d, want %d (every sub converges in lockstep)", stats.Rounds, target)
	}
}

// ringSub reads its left neighbor's value and writes neighbor+1 to its own
// record. Under BSP (synchronous) semantics the state after R rounds is
// deterministic regardless of worker count: every record holds exactly R.
type ringSub struct {
	mine, left *storage.IterativeRecord
	rounds     uint64
	buf        storage.Payload
}

func (s *ringSub) Begin(ctx *itx.Ctx) { s.buf = make(storage.Payload, 1) }

func (s *ringSub) Execute(ctx *itx.Ctx) {
	ctx.Read(s.left, s.buf)
	v := s.buf[0] + 1
	s.buf[0] = v
	ctx.Write(s.mine, s.buf)
}

func (s *ringSub) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration()+1 >= s.rounds {
		return itx.Done
	}
	return itx.Commit
}

func TestSyncBSPDeterminism(t *testing.T) {
	const n = 64
	const rounds = 9
	for _, workers := range []int{1, 2, 4, 7} {
		recs := make([]*storage.IterativeRecord, n)
		for i := range recs {
			recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 1)
		}
		subs := make([]itx.Sub, n)
		for i := range subs {
			subs[i] = &ringSub{mine: recs[i], left: recs[(i+n-1)%n], rounds: rounds}
		}
		e := New(Config{Workers: workers, BatchSize: 8}, isolation.Options{Level: isolation.Synchronous})
		e.Run(subs, nil)
		out := make(storage.Payload, 1)
		for i, rec := range recs {
			rec.ReadRelaxed(out)
			if out[0] != rounds {
				t.Fatalf("workers=%d record %d = %d, want %d (BSP determinism broken)",
					workers, i, out[0], rounds)
			}
		}
	}
}

// rollbackSub requests Rollback for its first k attempts, then commits.
type rollbackSub struct {
	rec      *storage.IterativeRecord
	failures int
	attempts int
}

func (s *rollbackSub) Begin(ctx *itx.Ctx) {}
func (s *rollbackSub) Execute(ctx *itx.Ctx) {
	s.attempts++
	ctx.Write(s.rec, storage.Payload{uint64(s.attempts)})
}
func (s *rollbackSub) Validate(ctx *itx.Ctx) itx.Action {
	if s.attempts <= s.failures {
		return itx.Rollback
	}
	return itx.Done
}

func TestRollbackRetriesIteration(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	sub := &rollbackSub{rec: rec, failures: 3}
	e := New(Config{Workers: 2}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run([]itx.Sub{sub}, nil)
	if stats.Rollbacks != 3 {
		t.Fatalf("Rollbacks = %d, want 3", stats.Rollbacks)
	}
	if stats.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", stats.Commits)
	}
	out := make(storage.Payload, 1)
	rec.ReadRelaxed(out)
	if out[0] != 4 {
		t.Fatalf("final value %d, want 4 (only the committed attempt installed)", out[0])
	}
}

// neverDoneSub loops forever unless capped.
type neverDoneSub struct{ rec *storage.IterativeRecord }

func (s *neverDoneSub) Begin(ctx *itx.Ctx) {}
func (s *neverDoneSub) Execute(ctx *itx.Ctx) {
	ctx.Write(s.rec, storage.Payload{ctx.Iteration() + 1})
}
func (s *neverDoneSub) Validate(ctx *itx.Ctx) itx.Action { return itx.Commit }

func TestMaxIterationsCapsAsync(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	e := New(Config{Workers: 2, MaxIterations: 12}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run([]itx.Sub{&neverDoneSub{rec: rec}}, nil)
	if stats.ForcedStops != 1 {
		t.Fatalf("ForcedStops = %d, want 1", stats.ForcedStops)
	}
	if stats.Commits != 12 {
		t.Fatalf("Commits = %d, want 12", stats.Commits)
	}
}

func TestMaxIterationsCapsSync(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	e := New(Config{Workers: 2, MaxIterations: 5}, isolation.Options{Level: isolation.Synchronous})
	stats := e.Run([]itx.Sub{&neverDoneSub{rec: rec}}, nil)
	if stats.ForcedStops != 1 {
		t.Fatalf("ForcedStops = %d, want 1", stats.ForcedStops)
	}
	if stats.Rounds != 5 {
		t.Fatalf("Rounds = %d, want 5", stats.Rounds)
	}
}

func TestBatchSizeDoesNotChangeResult(t *testing.T) {
	for _, bs := range []int{1, 4, 64, 1024} {
		subs, recs := newCounterSubs(100, 5)
		e := New(Config{Workers: 3, BatchSize: bs}, isolation.Options{Level: isolation.Asynchronous})
		e.Run(subs, nil)
		out := make(storage.Payload, 1)
		for i, rec := range recs {
			rec.ReadRelaxed(out)
			if out[0] != 5 {
				t.Fatalf("batch size %d: record %d = %d", bs, i, out[0])
			}
		}
	}
}

// regionRecorder records which workers executed it.
type regionRecorder struct {
	workers map[int]bool
}

func (s *regionRecorder) Begin(ctx *itx.Ctx)   { s.workers = map[int]bool{} }
func (s *regionRecorder) Execute(ctx *itx.Ctx) { s.workers[ctx.Worker()] = true }
func (s *regionRecorder) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration() >= 19 {
		return itx.Done
	}
	return itx.Commit
}

func TestRegionRoutingKeepsWorkInRegion(t *testing.T) {
	top := numa.NewTopology(2, 4) // workers 0,2 -> region 0; 1,3 -> region 1
	subs := make([]itx.Sub, 8)
	recorders := make([]*regionRecorder, 8)
	for i := range subs {
		recorders[i] = &regionRecorder{}
		subs[i] = recorders[i]
	}
	regionOf := func(i int) int { return i % 2 }
	// Stealing off: this test pins queue *routing* — every batch is
	// processed only by its home region's workers. The steal fallback is
	// covered by TestWorkStealingDrainsSkewedRegion.
	e := New(Config{Workers: 4, Topology: top, BatchSize: 2, DisableWorkStealing: true},
		isolation.Options{Level: isolation.Asynchronous})
	e.Run(subs, regionOf)
	for i, r := range recorders {
		wantRegion := i % 2
		for w := range r.workers {
			if top.RegionOf(w) != wantRegion {
				t.Fatalf("sub %d (region %d) executed by worker %d of region %d",
					i, wantRegion, w, top.RegionOf(w))
			}
		}
	}
}

func TestIterationHookInvoked(t *testing.T) {
	var calls atomic.Int64
	subs, _ := newCounterSubs(10, 3)
	e := New(Config{
		Workers:       2,
		IterationHook: func(worker int) { calls.Add(1) },
	}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	if uint64(calls.Load()) != stats.Executions {
		t.Fatalf("hook calls %d != executions %d", calls.Load(), stats.Executions)
	}
}

func TestBoundedStalenessEndToEnd(t *testing.T) {
	// Counter subs under bounded staleness with a generous bound: single
	// writer per record, so everything commits without rollbacks when S is
	// large.
	const n, target = 50, 6
	subs := make([]itx.Sub, n)
	recs := make([]*storage.IterativeRecord, n)
	for i := range subs {
		recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 8)
		subs[i] = &counterSub{rec: recs[i], target: target}
	}
	opts := isolation.Options{Level: isolation.BoundedStaleness, Staleness: 100}
	e := New(Config{Workers: 4, BatchSize: 8}, opts)
	stats := e.Run(subs, nil)
	if stats.Rollbacks != 0 {
		t.Fatalf("unexpected rollbacks: %d", stats.Rollbacks)
	}
	out := make(storage.Payload, 1)
	for i, rec := range recs {
		rec.ReadRecent(out)
		if out[0] != target {
			t.Fatalf("record %d = %d", i, out[0])
		}
	}
}

func TestEmptyRun(t *testing.T) {
	e := New(Config{Workers: 2}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(nil, nil)
	if stats.Executions != 0 {
		t.Fatal("executions on empty run")
	}
	e = New(Config{Workers: 2}, isolation.Options{Level: isolation.Synchronous})
	if stats := e.Run(nil, nil); stats.Rounds != 0 {
		t.Fatal("rounds on empty sync run")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers <= 0 || c.BatchSize != DefaultBatchSize || c.Topology.Regions < 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

package exec

import (
	"testing"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
)

// slowSub sleeps a fixed time per iteration so busy-time accounting is
// predictable.
type slowSub struct {
	d      time.Duration
	rounds uint64
}

func (s *slowSub) Begin(ctx *itx.Ctx)   {}
func (s *slowSub) Execute(ctx *itx.Ctx) { time.Sleep(s.d) }
func (s *slowSub) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration()+1 >= s.rounds {
		return itx.Done
	}
	return itx.Commit
}

func TestWorkerBusyStatsQueued(t *testing.T) {
	subs := []itx.Sub{
		&slowSub{d: 2 * time.Millisecond, rounds: 4},
		&slowSub{d: 2 * time.Millisecond, rounds: 4},
	}
	e := New(Config{Workers: 2, BatchSize: 1}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	// Total busy time across workers must cover the sleeps: 2 subs × 4
	// rounds × 2ms = 16ms of mandatory work.
	if stats.AvgWorkerBusy*2 < 14*time.Millisecond {
		t.Fatalf("busy accounting lost time: avg %v", stats.AvgWorkerBusy)
	}
	if stats.MaxWorkerBusy < stats.AvgWorkerBusy {
		t.Fatalf("max busy %v below avg %v", stats.MaxWorkerBusy, stats.AvgWorkerBusy)
	}
}

func TestWorkerBusyStatsSync(t *testing.T) {
	subs := []itx.Sub{
		&slowSub{d: 2 * time.Millisecond, rounds: 3},
		&slowSub{d: 2 * time.Millisecond, rounds: 3},
	}
	e := New(Config{Workers: 2}, isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	if stats.AvgWorkerBusy < 5*time.Millisecond {
		t.Fatalf("sync busy accounting lost time: avg %v", stats.AvgWorkerBusy)
	}
	if stats.Elapsed < stats.MaxWorkerBusy {
		t.Fatalf("elapsed %v below max busy %v", stats.Elapsed, stats.MaxWorkerBusy)
	}
}

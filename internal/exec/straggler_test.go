package exec

import (
	"sync/atomic"
	"testing"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/storage"
)

// TestSyncStragglerStallsEveryone verifies the barrier semantics the paper
// relies on in Figure 9: with a straggling worker under the synchronous
// level, every round waits for the straggler, so total runtime grows with
// the straggler's delay — whereas async lets the other workers race ahead.
func TestSyncStragglerStallsEveryone(t *testing.T) {
	const n = 16
	const iters = 4
	mkSubs := func() []itx.Sub {
		subs, _ := newCounterSubs(n, iters)
		return subs
	}
	hook := func(worker int) {
		if worker == 1 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Pin the straggler's ownership: two single-worker regions without
	// stealing, so worker 1 must process every odd-indexed sub itself and
	// the pool cannot load-balance around it.
	sync := New(Config{
		Workers: 2, BatchSize: 2, IterationHook: hook,
		Topology: numa.NewTopology(2, 2), DisableWorkStealing: true,
	}, isolation.Options{Level: isolation.Synchronous})
	syncStats := sync.Run(mkSubs(), nil)
	// Worker 1 owns n/2 subs; each round costs it ≥ (n/2)·2ms, and the
	// barrier makes the whole round that slow.
	minSync := time.Duration(iters*(n/2)*2) * time.Millisecond
	if syncStats.Elapsed < minSync {
		t.Fatalf("sync run with straggler finished in %v, barrier should enforce ≥ %v",
			syncStats.Elapsed, minSync)
	}
}

// TestAsyncProgressDespiteStraggler: under async, non-straggling workers
// finish their sub-transactions without waiting for the straggler's.
func TestAsyncProgressDespiteStraggler(t *testing.T) {
	const n = 8
	recs := make([]*storage.IterativeRecord, n)
	subs := make([]itx.Sub, n)
	for i := range subs {
		recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 1)
		subs[i] = &counterSub{rec: recs[i], target: 3}
	}
	var hookCalls atomic.Int64
	hook := func(worker int) {
		hookCalls.Add(1)
		if worker == 1 {
			time.Sleep(time.Millisecond)
		}
	}
	e := New(Config{Workers: 2, BatchSize: 1, IterationHook: hook},
		isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	if stats.Commits != n*3 {
		t.Fatalf("commits = %d", stats.Commits)
	}
	if hookCalls.Load() != int64(stats.Executions) {
		t.Fatalf("hook calls %d != executions %d", hookCalls.Load(), stats.Executions)
	}
}

// TestWorkersExceedSubs: more workers than work must not deadlock or
// duplicate execution.
func TestWorkersExceedSubs(t *testing.T) {
	subs, recs := newCounterSubs(2, 3)
	e := New(Config{Workers: 8, BatchSize: 4}, isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)
	if stats.Commits != 6 {
		t.Fatalf("commits = %d, want 6", stats.Commits)
	}
	out := make(storage.Payload, 1)
	for i, rec := range recs {
		rec.ReadRelaxed(out)
		if out[0] != 3 {
			t.Fatalf("record %d = %d", i, out[0])
		}
	}
}

// TestRegionWithNoSubs: a region whose queue is empty from the start must
// not wedge its workers.
func TestRegionWithNoSubs(t *testing.T) {
	subs, _ := newCounterSubs(4, 2)
	e := New(Config{Workers: 4, BatchSize: 1}, isolation.Options{Level: isolation.Asynchronous})
	// Route everything to region 0; workers of other regions spin-yield
	// until global completion.
	stats := e.Run(subs, func(i int) int { return 0 })
	if stats.Commits != 8 {
		t.Fatalf("commits = %d", stats.Commits)
	}
}

package exec

import (
	"sync"
	"testing"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
)

func async() isolation.Options { return isolation.Options{Level: isolation.Asynchronous} }

// TestPoolRunsConcurrentJobs: one pool, started once, drives several
// independent jobs submitted together; each job's stats must account for
// exactly its own sub-transactions.
func TestPoolRunsConcurrentJobs(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const jobsN = 3
	const n = 24
	const target = 5
	jobs := make([]*Job, jobsN)
	for i := range jobs {
		subs, recs := newCounterSubs(n, target)
		j, err := p.Submit(subs, async(), JobConfig{BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
		_ = recs
	}
	for i, j := range jobs {
		stats, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if stats.Commits != n*target {
			t.Fatalf("job %d commits = %d, want %d", i, stats.Commits, n*target)
		}
		if stats.Rollbacks != 0 || stats.ForcedStops != 0 {
			t.Fatalf("job %d: unexpected rollbacks/forced stops: %+v", i, stats)
		}
	}
}

// TestPoolMixedIsolationJobs: a synchronous job (with its per-job barrier)
// and an asynchronous job share the pool without interfering.
func TestPoolMixedIsolationJobs(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 12
	const target = 4
	syncSubs, _ := newCounterSubs(n, target)
	asyncSubs, _ := newCounterSubs(n, target)
	js, err := p.Submit(syncSubs, isolation.Options{Level: isolation.Synchronous}, JobConfig{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := p.Submit(asyncSubs, async(), JobConfig{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	syncStats, err := js.Wait()
	if err != nil {
		t.Fatal(err)
	}
	asyncStats, err := ja.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if syncStats.Rounds != target {
		t.Fatalf("sync job rounds = %d, want %d", syncStats.Rounds, target)
	}
	if syncStats.Commits != n*target || asyncStats.Commits != n*target {
		t.Fatalf("commits sync=%d async=%d, want %d each", syncStats.Commits, asyncStats.Commits, n*target)
	}
	if asyncStats.Rounds != 0 {
		t.Fatalf("async job counted %d barrier rounds", asyncStats.Rounds)
	}
}

// TestPoolPerJobObserverDisjoint: concurrent jobs with separate observers
// produce disjoint, correctly labelled snapshots.
func TestPoolPerJobObserverDisjoint(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	type run struct {
		job *Job
		o   *obs.Observer
		n   uint64
	}
	runs := []run{{n: 40}, {n: 15}}
	labels := []string{"alpha", "beta"}
	for i := range runs {
		runs[i].o = obs.New()
		subs, _ := newCounterSubs(int(runs[i].n), 3)
		j, err := p.Submit(subs, async(), JobConfig{BatchSize: 8, Observer: runs[i].o, Label: labels[i]})
		if err != nil {
			t.Fatal(err)
		}
		runs[i].job = j
	}
	for i := range runs {
		if _, err := runs[i].job.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range runs {
		snap := runs[i].o.Snapshot()
		if snap.Job != labels[i] {
			t.Fatalf("snapshot %d labelled %q, want %q", i, snap.Job, labels[i])
		}
		if want := runs[i].n * 3; snap.Counters.Commits != want {
			t.Fatalf("job %q snapshot commits = %d, want %d (telemetry interleaved across jobs?)",
				labels[i], snap.Counters.Commits, want)
		}
		if len(snap.Convergence) < 2 {
			t.Fatalf("job %q convergence series too short: %d", labels[i], len(snap.Convergence))
		}
		if last := snap.Convergence[len(snap.Convergence)-1]; last.Live != 0 {
			t.Fatalf("job %q final sample live = %d", labels[i], last.Live)
		}
	}
}

// TestPoolCloseRejectsSubmit: Close drains active jobs, then Submit fails
// with ErrPoolClosed; Close is idempotent.
func TestPoolCloseRejectsSubmit(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := newCounterSubs(8, 3)
	j, err := p.Submit(subs, async(), JobConfig{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	select {
	case <-j.Done():
	default:
		t.Fatal("Close returned with a job still active")
	}
	if stats, err := j.Wait(); err != nil || stats.Commits != 8*3 {
		t.Fatalf("drained job: stats=%+v err=%v", stats, err)
	}
	if _, err := p.Submit(subs, async(), JobConfig{}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// TestJobCancel: a cancelled job retires early, Wait reports
// ErrJobCancelled, and the pool keeps serving other jobs.
func TestJobCancel(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// An endless job: counterSub never reaches its huge target.
	subs, _ := newCounterSubs(4, 1<<40)
	j, err := p.Submit(subs, async(), JobConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for j.Stats().Commits == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j.Cancel()
	if _, err := j.Wait(); err != ErrJobCancelled {
		t.Fatalf("Wait after Cancel = %v, want ErrJobCancelled", err)
	}

	// The pool is still fully usable.
	subs2, _ := newCounterSubs(6, 2)
	j2, err := p.Submit(subs2, async(), JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats, err := j2.Wait(); err != nil || stats.Commits != 12 {
		t.Fatalf("post-cancel job: stats=%+v err=%v", stats, err)
	}
}

// TestJobCancelSync: a synchronous job stops at its next barrier.
func TestJobCancelSync(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	subs, _ := newCounterSubs(4, 1<<40)
	j, err := p.Submit(subs, isolation.Options{Level: isolation.Synchronous}, JobConfig{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j.Stats().Rounds == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j.Cancel()
	if _, err := j.Wait(); err != ErrJobCancelled {
		t.Fatalf("Wait after Cancel = %v, want ErrJobCancelled", err)
	}
}

// TestConfigValidateRejectsStarvingRegions: more regions than workers
// must be rejected up front instead of hanging a region's queue.
func TestConfigValidateRejectsStarvingRegions(t *testing.T) {
	bad := Config{Workers: 2, Topology: numa.Topology{Regions: 4, Workers: 4}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a topology with worker-less regions")
	}
	if _, err := NewPool(bad); err == nil {
		t.Fatal("NewPool accepted a topology with worker-less regions")
	}
	if _, err := Run(bad, async(), nil, nil); err == nil {
		t.Fatal("Run accepted a topology with worker-less regions")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Engine.Run did not panic on an invalid config")
		}
	}()
	New(bad, async()).Run(nil, nil)
}

// TestPoolSubmitManyFromGoroutines: concurrent Submit/Wait from many
// goroutines against one pool.
func TestPoolSubmitManyFromGoroutines(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			subs, _ := newCounterSubs(10, 4)
			stats, err := RunOn(p, Config{BatchSize: 3}, async(), subs, nil)
			if err != nil {
				errs <- err
				return
			}
			if stats.Commits != 40 {
				errs <- errCommits(stats.Commits)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errCommits uint64

func (e errCommits) Error() string { return "unexpected commit count" }

// TestEmptyJob: submitting no subs completes immediately.
func TestEmptyJob(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	j, err := p.Submit(nil, async(), JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats, err := j.Wait(); err != nil || stats.Executions != 0 {
		t.Fatalf("empty job: stats=%+v err=%v", stats, err)
	}
}

package exec

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/queue"
	"db4ml/internal/resilience"
	"db4ml/internal/trace"
)

// ErrPoolClosed is returned by Pool.Submit after Close has begun.
var ErrPoolClosed = errors.New("exec: pool closed")

// ErrJobCancelled is returned by Job.Wait when the job was retired by
// Cancel before it converged.
var ErrJobCancelled = errors.New("exec: job cancelled")

// JobConfig tunes one job — one uber-transaction's worth of
// sub-transactions — submitted to a Pool. Worker count, topology, and
// work stealing are properties of the Pool; everything per-run lives here.
type JobConfig struct {
	// BatchSize is the number of sub-transactions per scheduling batch;
	// defaults to DefaultBatchSize.
	BatchSize int
	// MaxIterations force-retires a sub-transaction after that many
	// committed iterations (0 = run to convergence).
	MaxIterations uint64
	// MaxAttempts force-retires a sub-transaction after that many finalized
	// attempts, the livelock backstop; defaults to MaxIterations×64 when
	// MaxIterations is set.
	MaxAttempts uint64
	// RegionOf routes sub-transaction i to a NUMA region queue; nil
	// spreads round-robin.
	RegionOf func(i int) int
	// IterationHook runs before every sub-transaction execution with the
	// worker id.
	IterationHook func(worker int)
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively at the first round where every live one votes Done.
	ConvergeTogether bool
	// Observer, when non-nil, collects this job's telemetry; its snapshot
	// is tagged with the job's label. One observer serves one job at a
	// time — give concurrent jobs separate observers.
	Observer *obs.Observer
	// Tracer, when non-nil, records this job's scheduling timeline (batch
	// passes, queue waits, barrier skew, steals, faults, aborts) into its
	// per-worker ring buffers; see internal/trace. Tracers are pool-shaped,
	// not job-shaped — size one with the pool's worker count and share it
	// across every job submitted.
	Tracer *trace.Tracer
	// TraceID, when nonzero, overrides the pool-assigned job id on every
	// trace event this job records. The shard coordinator sets one id on
	// all per-shard fragments of a distributed uber-transaction, so spans
	// recorded by different pools correlate in a merged cross-shard trace.
	TraceID uint64
	// Label names the job in telemetry snapshots; defaults to "job-<id>".
	Label string
	// Chaos, when non-nil, perturbs this job's scheduling at the chaos
	// injection points (batch start, post-validate, recirculation); see
	// internal/chaos. Steal perturbation is pool-level (Config.Chaos).
	Chaos chaos.Injector
	// Recorder, when non-nil, receives this job's isolation-relevant
	// history (reads, validations, installs, barrier flips) for post-hoc
	// invariant checking; see internal/check.
	Recorder Recorder
	// BarrierHook, when non-nil, runs at every synchronous-level barrier
	// flip on the last-arriving worker, BEFORE the new phase is stored or
	// any batch re-pushed. It may block: the shard coordinator uses it to
	// extend the per-job barrier into a global rendezvous, so no shard of a
	// distributed synchronous job enters nextPhase until every shard's
	// barrier has flipped. It must be released externally (rendezvous
	// Leave/Break) when a sibling job finishes early, or the pool's worker
	// stays parked in it.
	BarrierHook func(round uint64, nextPhase int32)
	// ConvergeVote, when non-nil with ConvergeTogether set, turns the
	// collective-retirement decision over to an external arbiter: the pool
	// reports whether every locally live sub-transaction voted Done this
	// round, and retires them only if the hook returns true. Like
	// BarrierHook it may block and is called once per round on the
	// last-arriving worker — the shard coordinator points it at a voting
	// rendezvous so a distributed synchronous job reaches its fixpoint
	// globally, not shard-by-shard.
	ConvergeVote func(unanimous bool) bool
	// Hold submits the job fully armed — contexts, watchdogs, telemetry —
	// but publishes no batch to the run queues: no worker executes a
	// sub-transaction until Job.Release. The shard coordinator holds every
	// shard of a distributed run and releases them together, so no shard
	// iterates (and prematurely converges) against a sibling shard whose
	// rows are still seed-valued because its job was not yet submitted.
	// Release promptly: the deadline and stall watchdogs run from Submit.
	Hold bool
	// Deadline, when nonzero, bounds the job's wall-clock runtime: past it
	// the job is retired and Wait reports resilience.ErrJobDeadline.
	// Enforcement is two-layered — a cooperative per-finalize check
	// (itx.ForceDeadline) retires active-but-nonconvergent jobs mid-batch,
	// and the watchdog timer catches jobs whose batches stopped flowing,
	// force-finishing the job after a short drain grace so even a worker
	// wedged inside user code cannot hang Wait past the deadline.
	Deadline time.Duration
	// StallTimeout, when nonzero, arms the progress watchdog: a job whose
	// iteration heartbeat does not advance for this long is convicted and
	// Wait reports resilience.ErrJobStalled — even when a worker is wedged
	// inside user code and can never reach a scheduling point.
	StallTimeout time.Duration
}

func (jc JobConfig) withDefaults() JobConfig {
	if jc.BatchSize <= 0 {
		jc.BatchSize = DefaultBatchSize
	}
	if jc.MaxAttempts == 0 && jc.MaxIterations > 0 {
		jc.MaxAttempts = deriveMaxAttempts(jc.MaxIterations)
	}
	return jc
}

// Pool is the persistent execution engine: a fixed set of worker
// goroutines, each pinned to a simulated NUMA region, started once and
// shared by every job submitted until Close. Batches from concurrent jobs
// interleave through per-region scheduling — a worker's pass round-robins
// across the jobs with work queued in its region — so one long training
// job cannot starve another.
type Pool struct {
	topo     numa.Topology
	workers  int
	stealing bool
	chaos    chaos.Injector // nil in production; perturbs steals (Config.Chaos)

	// gen/waiters implement worker parking without lost wakeups: a worker
	// reads gen, re-checks the queues, and sleeps only while gen is
	// unchanged; every push bumps gen before checking waiters, so either
	// the sleeper sees the new gen or the pusher sees the waiter.
	gen     atomic.Uint64
	waiters atomic.Int64

	jobs   atomic.Pointer[[]*Job] // copy-on-write active-job list
	rr     []atomic.Uint64        // per-region round-robin job cursor
	nextID atomic.Uint64
	closed atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond // workers park here
	drained *sync.Cond // Close waits here for active jobs
	closing bool
	active  int

	wg sync.WaitGroup

	// Maintenance goroutines (Maintain) are joined after the workers: they
	// run off the worker path and must not outlive the pool.
	maintDone chan struct{}
	maintWG   sync.WaitGroup
}

// NewPool validates cfg (see Config.Validate), starts cfg.Workers worker
// goroutines, and returns the running pool. Only the pool-level fields of
// cfg are used: Workers, Topology, DisableWorkStealing.
func NewPool(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		topo:     cfg.Topology,
		workers:  cfg.Workers,
		stealing: !cfg.DisableWorkStealing && cfg.Topology.Regions > 1,
		chaos:    cfg.Chaos,
		rr:       make([]atomic.Uint64, cfg.Topology.Regions),
	}
	p.cond = sync.NewCond(&p.mu)
	p.drained = sync.NewCond(&p.mu)
	p.maintDone = make(chan struct{})
	empty := make([]*Job, 0)
	p.jobs.Store(&empty)
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p, nil
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Topology returns the pool's simulated NUMA layout.
func (p *Pool) Topology() numa.Topology { return p.topo }

// Close gracefully shuts the pool down: it stops admitting jobs, waits for
// every active job to finish, and joins the workers. Safe to call more
// than once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closing = true
	for p.active > 0 {
		p.drained.Wait()
	}
	p.mu.Unlock()
	if !p.closed.Swap(true) {
		close(p.maintDone)
		p.gen.Add(1)
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	p.wg.Wait()
	p.maintWG.Wait()
}

// Maintain runs fn every interval on a pool-owned goroutine until the
// returned stop function is called or the pool closes, whichever comes
// first. Maintenance work (version garbage collection, telemetry flushes)
// rides on the pool's lifecycle without ever occupying a worker: fn runs
// off the scheduling path, so a slow pass delays only the next pass, never
// a batch. Stop is idempotent and returns after any in-flight fn call.
func (p *Pool) Maintain(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 || fn == nil || p.closed.Load() {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	var once sync.Once
	p.maintWG.Add(1)
	go func() {
		defer p.maintWG.Done()
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-p.maintDone:
				return
			case <-done:
				return
			case <-tick.C:
				fn()
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// notify wakes parked workers after new batches were pushed.
func (p *Pool) notify() {
	p.gen.Add(1)
	if p.waiters.Load() > 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Submit schedules subs as one job under the given isolation options and
// returns immediately; drive the result through the returned Job. Batches
// are routed to region queues via jc.RegionOf and processed by the pool's
// workers alongside every other active job.
func (p *Pool) Submit(subs []itx.Sub, opts isolation.Options, jc JobConfig) (*Job, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	jc = jc.withDefaults()
	regions := p.topo.Regions
	regionOf := jc.RegionOf
	if regionOf == nil {
		regionOf = func(i int) int { return i % regions }
	}

	j := &Job{
		pool:     p,
		opts:     opts,
		cfg:      jc,
		state:    itx.NewJobState(int64(len(subs)), jc.MaxIterations, jc.MaxAttempts),
		cnt:      newCounters(p.workers),
		rq:       make([]*queue.Queue[*batch], regions),
		syncMode: opts.Level == isolation.Synchronous,
		done:     make(chan struct{}),
		start:    time.Now(),
		total:    int64(len(subs)),
		instr:    jc.Observer != nil || jc.Tracer != nil,
	}
	for r := range j.rq {
		j.rq[r] = queue.New[*batch]()
	}
	perRegion := make([][]*sched, regions)
	for i, sub := range subs {
		s := &sched{sub: sub, ctx: itx.NewCtx(opts, -1)}
		s.ctx.SetObserver(jc.Observer)
		s.ctx.SetSub(i)
		if jc.Recorder != nil {
			s.ctx.SetRecorder(jc.Recorder)
		}
		if jc.Chaos != nil {
			s.ctx.SetChaos(jc.Chaos)
		}
		r := regionOf(i) % regions
		if r < 0 {
			r = 0
		}
		perRegion[r] = append(perRegion[r], s)
	}
	for r := range perRegion {
		for lo := 0; lo < len(perRegion[r]); lo += jc.BatchSize {
			hi := lo + jc.BatchSize
			if hi > len(perRegion[r]) {
				hi = len(perRegion[r])
			}
			j.batches = append(j.batches, &batch{subs: perRegion[r][lo:hi], home: r, live: int64(hi - lo)})
		}
	}

	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	j.id = p.nextID.Add(1)
	j.traceID = jc.TraceID
	if j.traceID == 0 {
		j.traceID = j.id
	}
	j.label = jc.Label
	if j.label == "" {
		j.label = fmt.Sprintf("job-%d", j.id)
	}
	p.active++
	p.addJobLocked(j)
	p.mu.Unlock()

	if jc.Tracer != nil {
		// The tracer needs the pool-assigned job id, so contexts learn it
		// only now — before any batch is published to a queue.
		for _, s := range perRegion {
			for _, sc := range s {
				sc.ctx.SetTracer(jc.Tracer, j.traceID)
			}
		}
	}
	if o := jc.Observer; o != nil {
		o.BeginRun(p.workers)
		o.SetJob(j.label)
		o.RecordSample(j.state.Live(), 0, 0) // t=0 point: everything live
	}
	j.stopSampler = j.startSampler()
	// Atomic handoff: the watchdog's own expire path may reach finishJob
	// (stall conviction) concurrently with this store; a nil load there
	// simply skips the stop, which is correct — an expired chain is dead.
	stopWD := j.startWatchdog()
	j.stopWatchdog.Store(&stopWD)

	if len(j.batches) == 0 {
		p.finishJob(j)
		return j, nil
	}
	if jc.Hold {
		j.held.Store(true)
		return j, nil
	}
	j.startBatches()
	return j, nil
}

// startBatches publishes the job's batches to the run queues — the moment
// execution begins. Split from Submit so held jobs (JobConfig.Hold) can
// start later, aligned with their distributed siblings, via Release.
func (j *Job) startBatches() {
	if j.syncMode {
		j.roundLive = j.state.Live()
		if rec := j.cfg.Recorder; rec != nil {
			// Round 0's execute phase opens before any batch is visible.
			rec.RecordBarrier(0, PhaseExecute)
		}
		j.pushActive()
		return
	}
	now := int64(0)
	if j.instr {
		now = j.nanotime()
	}
	for _, b := range j.batches {
		b.enq = now
		j.rq[b.home].Push(b)
	}
	j.pool.notify()
}

// Release starts a job submitted with JobConfig.Hold. Idempotent; a job
// submitted without Hold needs no Release. A held job MUST eventually be
// released — even after Cancel — or its batches never drain and Wait
// never returns.
func (j *Job) Release() {
	if j.held.CompareAndSwap(true, false) {
		j.startBatches()
	}
}

func (p *Pool) addJobLocked(j *Job) {
	old := *p.jobs.Load()
	next := make([]*Job, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, j)
	p.jobs.Store(&next)
}

func (p *Pool) removeJob(j *Job) {
	p.mu.Lock()
	old := *p.jobs.Load()
	next := make([]*Job, 0, len(old))
	for _, o := range old {
		if o != j {
			next = append(next, o)
		}
	}
	p.jobs.Store(&next)
	p.active--
	if p.active == 0 {
		p.drained.Broadcast()
	}
	p.mu.Unlock()
}

// worker is the long-lived scheduling loop of one pool worker: pop a batch
// from the home region (round-robinning across jobs), fall back to
// stealing from other regions, park when everything is drained.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	region := p.topo.RegionOf(w)
	regions := p.topo.Regions
	for {
		g := p.gen.Load()
		j, b, stolen := p.tryPop(w, region, regions)
		if b == nil {
			if p.closed.Load() {
				return
			}
			p.waiters.Add(1)
			p.mu.Lock()
			for p.gen.Load() == g && !p.closed.Load() {
				p.cond.Wait()
			}
			p.mu.Unlock()
			p.waiters.Add(-1)
			continue
		}
		if j.instr && b.enq > 0 {
			wait := j.nanotime() - b.enq
			b.enq = 0
			if o := j.cfg.Observer; o != nil {
				o.RecordLatency(w, obs.QueueWaitLatency, wait)
			}
			if tr := j.cfg.Tracer; tr != nil {
				tr.Span(w, trace.KindQueueWait, j.traceID, int64(b.home), tr.Now()-wait, wait)
			}
		}
		if stolen {
			j.cnt.steals.Add(1)
			if o := j.cfg.Observer; o != nil {
				o.Inc(w, obs.Steals)
			}
			if tr := j.cfg.Tracer; tr != nil {
				tr.Instant(w, trace.KindSteal, j.traceID, int64(b.home))
			}
		}
		j.running.Add(1)
		p.processBatch(w, j, b)
		if j.running.Add(-1) == 0 && j.state.Live() == 0 {
			p.finishJob(j)
		}
	}
}

// processBatch runs one batch pass under panic containment: every
// sub-transaction callback (Begin/Execute/Validate), iteration hook,
// Finalize, and the engine's own scheduling code for this pass execute
// inside guard, so a panic becomes a job-level abort (the job fails with
// resilience.ErrJobPanicked and drains) while the worker survives to serve
// the pool's other jobs. The sync barrier's arrival accounting runs outside
// the guarded phase so a panicking batch still arrives — otherwise the
// job's other batches would wait at the barrier forever.
func (p *Pool) processBatch(w int, j *Job, b *batch) {
	if j.syncMode {
		phase := j.phase.Load()
		p.guard(w, j, func() { p.processSyncPhase(w, j, b, phase) })
		var now int64
		if j.instr {
			// Barrier arrival skew: the first arriver of the phase stamps
			// firstArrive; the last arriver (below) reads it back and records
			// how long the fast batches waited for the stragglers.
			now = j.nanotime()
			j.firstArrive.CompareAndSwap(0, now)
		}
		if j.arrived.Add(1) == j.inFlight.Load() {
			if j.instr {
				if first := j.firstArrive.Swap(0); first > 0 {
					skew := now - first
					if skew < 0 {
						// The last arriver read its clock before the first
						// arriver won the CAS; call the skew zero.
						skew = 0
					}
					if o := j.cfg.Observer; o != nil {
						o.RecordLatency(w, obs.BarrierWaitLatency, skew)
					}
					if tr := j.cfg.Tracer; tr != nil {
						tr.Span(w, trace.KindBarrier, j.traceID, int64(phase), tr.Now()-skew, skew)
					}
				}
			}
			if !p.guard(w, j, func() { p.syncBarrier(w, j, phase) }) && j.state.Live() > 0 {
				// The barrier panicked before retiring or re-pushing the
				// round's batches. Every user-supplied callback the barrier
				// runs (Recorder.RecordBarrier) fires before any batch is
				// re-published, so this worker still owns the round
				// exclusively and can retire it.
				j.retireAll()
			}
		}
	} else {
		// republished is flipped immediately before the batch is re-pushed:
		// past that point another worker may already own b, so the panic
		// recovery below must not drain it — the next owner's cancelled check
		// will (the guard's fail() already cancelled the job).
		republished := false
		if !p.guard(w, j, func() { p.processQueued(w, j, b, &republished) }) && !republished {
			// The panicked batch never reached its recirculation point;
			// retire its sub-transactions so the drained job can finish.
			j.drainBatch(b)
		}
	}
}

// guard runs fn under recover, converting a panic — from user callbacks or
// the engine's own batch processing — into a job failure carrying the stack
// (resilience.PanicError). Reports whether fn completed without panicking.
func (p *Pool) guard(w int, j *Job, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			j.fail(&resilience.PanicError{Value: r, Stack: debug.Stack(), Worker: w})
			j.cnt.panics.Add(1)
			if o := j.cfg.Observer; o != nil {
				o.Inc(w, obs.Panics)
			}
			// Wake parked workers: the job's remaining batches must be
			// popped and drained for the job to finish.
			p.notify()
		}
	}()
	fn()
	return true
}

// tryPop returns a batch from the worker's own region, or — when stealing
// is enabled — from the nearest region with queued work. A chaos injector
// on the pool can veto individual steal attempts (SkipSteal), perturbing
// which worker ends up with cross-region work without ever losing a batch:
// a skipped batch stays queued for its home region or the next thief.
func (p *Pool) tryPop(w, region, regions int) (*Job, *batch, bool) {
	if j, b := p.popRegion(region); b != nil {
		return j, b, false
	}
	if p.stealing {
		if p.chaos != nil && p.chaos.Perturb(chaos.Steal, w) == chaos.SkipSteal {
			return nil, nil, false
		}
		for off := 1; off < regions; off++ {
			if j, b := p.popRegion((region + off) % regions); b != nil {
				return j, b, true
			}
		}
	}
	return nil, nil, false
}

// popRegion round-robins across the active jobs with work queued in region
// r — the fairness rule that interleaves concurrent uber-transactions
// instead of draining them in submission order.
func (p *Pool) popRegion(r int) (*Job, *batch) {
	jobs := *p.jobs.Load()
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	start := int(p.rr[r].Add(1) % uint64(n))
	for k := 0; k < n; k++ {
		j := jobs[(start+k)%n]
		if b, ok := j.rq[r].Pop(); ok {
			return j, b
		}
	}
	return nil, nil
}

// injectBatchFault consults the job's chaos injector at the start of a
// batch pass: a Stall simulates an OS-descheduled worker, a Preempt yields
// the processor mid-schedule, and CancelJob cancels the whole job as if the
// client gave up mid-batch. Faults are counted in telemetry so runs can
// report how much perturbation they absorbed.
func (p *Pool) injectBatchFault(w int, j *Job) {
	inj := j.cfg.Chaos
	if inj == nil {
		return
	}
	f := inj.Perturb(chaos.BatchStart, w)
	if f == chaos.None {
		return
	}
	if o := j.cfg.Observer; o != nil {
		o.Inc(w, obs.ChaosFaults)
	}
	if tr := j.cfg.Tracer; tr != nil {
		tr.Instant(w, trace.KindFault, j.traceID, int64(f))
	}
	switch f {
	case chaos.Stall:
		time.Sleep(chaos.StallDuration)
	case chaos.Preempt:
		runtime.Gosched()
	case chaos.CancelJob:
		j.Cancel()
	}
}

// perturbVerdict consults the job's chaos injector right after a
// sub-transaction's Validate verdict: a Stall or Preempt widens the window
// between validation and finalize (the classic TOCTOU gap the isolation
// machinery must tolerate), and ForceRollback discards an otherwise
// committable iteration — the rollback-storm fault. Rollback verdicts pass
// through untouched: there is nothing left to take away.
func (p *Pool) perturbVerdict(w int, j *Job, action itx.Action) itx.Action {
	inj := j.cfg.Chaos
	if inj == nil {
		return action
	}
	f := inj.Perturb(chaos.Validate, w)
	if f == chaos.None {
		return action
	}
	if o := j.cfg.Observer; o != nil {
		o.Inc(w, obs.ChaosFaults)
	}
	if tr := j.cfg.Tracer; tr != nil {
		tr.Instant(w, trace.KindFault, j.traceID, int64(f))
	}
	switch f {
	case chaos.Stall:
		time.Sleep(chaos.StallDuration)
	case chaos.Preempt:
		runtime.Gosched()
	case chaos.ForceRollback:
		if action != itx.Rollback {
			return itx.Rollback
		}
	}
	return action
}

// processQueued handles one batch pass of an asynchronous or
// bounded-staleness job: run one iteration of every live sub-transaction,
// then recirculate the batch through its home queue if work remains.
// *republished is set just before the re-push so the caller's panic recovery
// knows whether it still owns b.
func (p *Pool) processQueued(w int, j *Job, b *batch, republished *bool) {
	p.injectBatchFault(w, j)
	if j.cancelled.Load() {
		j.drainBatch(b)
		return
	}
	o := j.cfg.Observer
	if o != nil {
		o.ObserveQueueDepth(j.rq[b.home].Len())
		o.ObserveLive(j.state.Live())
	}
	t0 := time.Now()
	committed := p.runBatchIteration(w, j, b)
	busy := int64(time.Since(t0))
	j.cnt.busy[w].Add(busy)
	if o != nil {
		o.AddBusy(w, busy)
		o.RecordLatency(w, obs.BatchPassLatency, busy)
	}
	if tr := j.cfg.Tracer; tr != nil {
		tr.Span(w, trace.KindBatch, j.traceID, int64(b.home), tr.Now()-busy, busy)
	}
	if j.cancelled.Load() {
		// Cancelled (or failed) mid-pass: retire the rest of the batch now
		// instead of recirculating it for a drain-only pass.
		j.drainBatch(b)
		return
	}
	if b.live > 0 {
		if inj := j.cfg.Chaos; inj != nil {
			// Recirculation point: delay or yield before the re-push so the
			// batch re-enters its queue at a perturbed position relative to
			// the job's other batches.
			switch inj.Perturb(chaos.Recirculate, w) {
			case chaos.Stall:
				time.Sleep(chaos.StallDuration)
			case chaos.Preempt:
				runtime.Gosched()
			}
		}
		// Always recirculate through the batch's home queue: a stolen
		// batch returns to its own region as soon as this pass ends, so
		// stealing never migrates data affinity permanently.
		if j.instr {
			b.enq = j.nanotime()
		}
		*republished = true
		j.rq[b.home].Push(b)
		if o != nil {
			o.Inc(w, obs.Recirculations)
		}
		p.notify()
		if committed == 0 {
			// Every live sub-transaction rolled back (e.g. SSP-throttled
			// behind a straggler): back off instead of spin-retrying.
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// runBatchIteration runs one iteration of every live sub-transaction in b
// and returns the number of committed iterations.
func (p *Pool) runBatchIteration(w int, j *Job, b *batch) int {
	o := j.cfg.Observer
	committed := 0
	// Chained clock reads: each finalized attempt's end stamp doubles as the
	// next attempt's start, so the whole batch pays one time.Now per attempt
	// — and none at all when telemetry is off.
	var last time.Time
	if o != nil {
		last = time.Now()
	}
	for _, s := range b.subs {
		if s.converged {
			continue
		}
		if j.cancelled.Load() {
			// Cancelled, failed, or deadline-retired mid-batch: stop
			// executing; the caller drains what remains.
			break
		}
		if j.cfg.IterationHook != nil {
			j.cfg.IterationHook(w)
		}
		s.ctx.SetWorker(w)
		if !s.begun {
			s.sub.Begin(s.ctx)
			s.begun = true
		}
		s.sub.Execute(s.ctx)
		j.beats.Add(1)
		j.cnt.executions.Add(1)
		if o != nil {
			o.Inc(w, obs.Executions)
		}
		if j.cancelled.Load() {
			// The job was convicted or cancelled while this sub executed —
			// possibly while this worker was wedged inside Execute and the
			// watchdog force-finished the job. The uber-transaction may
			// already be aborted (or a retry attempt re-begun), so this
			// attempt must not validate or install anything.
			break
		}
		action := p.perturbVerdict(w, j, s.sub.Validate(s.ctx))
		converged, rolledBack := s.ctx.Finalize(action)
		if o != nil {
			now := time.Now()
			o.RecordLatency(w, obs.AttemptLatency, int64(now.Sub(last)))
			last = now
		}
		if rolledBack {
			j.cnt.rollbacks.Add(1)
		} else {
			j.cnt.commits.Add(1)
			if o != nil {
				o.Inc(w, obs.Commits)
			}
			committed++
		}
		if !converged {
			switch j.state.ShouldForceStop(s.ctx) {
			case itx.ForceIterations:
				converged = true
				j.cnt.forcedStops.Add(1)
				if o != nil {
					o.Inc(w, obs.ForcedStopIters)
				}
			case itx.ForceAttempts:
				converged = true
				j.cnt.forcedStops.Add(1)
				if o != nil {
					o.Inc(w, obs.ForcedStopAttempts)
				}
			case itx.ForceDeadline:
				// The deadline passed mid-batch: retire this sub, fail the
				// job (first failure wins), and let the cancellation drain
				// retire the rest.
				converged = true
				j.cnt.forcedStops.Add(1)
				j.fail(&resilience.DeadlineError{Deadline: j.cfg.Deadline})
				if o != nil {
					o.Inc(w, obs.DeadlineAborts)
				}
			}
		}
		if converged {
			s.converged = true
			b.live--
			j.state.Retire(1)
		}
	}
	return committed
}

// Synchronous phases: every round executes all live sub-transactions with
// writes buffered, then — after a barrier — validates and installs.
// Exported because Recorder.RecordBarrier reports them and internal/check
// replays them when validating the no-read-across-the-barrier contract.
const (
	PhaseExecute int32 = iota
	PhaseInstall
)

// processSyncPhase handles one batch pass of a synchronous job's current
// phase. The barrier is cooperative and per-job: batches carry the job's
// current phase, each processed batch arrives at the barrier (in
// processBatch, outside the panic guard), and the last arriver flips the
// phase (or ends the round) and re-pushes the live batches — no worker
// ever blocks, so concurrent jobs keep flowing through the same pool.
func (p *Pool) processSyncPhase(w int, j *Job, b *batch, phase int32) {
	p.injectBatchFault(w, j)
	o := j.cfg.Observer
	t0 := time.Now()
	if !j.cancelled.Load() {
		if phase == PhaseExecute {
			// Chained clocks, as in runBatchIteration: a synchronous attempt's
			// latency covers its Execute + Validate (install happens in the
			// next phase, after the barrier).
			var last time.Time
			if o != nil {
				last = time.Now()
			}
			for _, s := range b.subs {
				if s.converged {
					continue
				}
				if j.cancelled.Load() {
					// Cancelled or failed mid-phase: the barrier retires the
					// round; unexecuted verdicts are never consulted.
					break
				}
				if j.cfg.IterationHook != nil {
					j.cfg.IterationHook(w)
				}
				s.ctx.SetWorker(w)
				if !s.begun {
					s.sub.Begin(s.ctx)
					s.begun = true
				}
				s.sub.Execute(s.ctx)
				j.beats.Add(1)
				j.cnt.executions.Add(1)
				if o != nil {
					o.Inc(w, obs.Executions)
				}
				if j.cancelled.Load() {
					// Convicted/cancelled while this sub executed: skip its
					// Validate; the barrier retires the round and the stale
					// verdict is never consulted.
					break
				}
				s.action = p.perturbVerdict(w, j, s.sub.Validate(s.ctx))
				if o != nil {
					now := time.Now()
					o.RecordLatency(w, obs.AttemptLatency, int64(now.Sub(last)))
					last = now
				}
			}
		} else {
			for _, s := range b.subs {
				if s.converged {
					continue
				}
				if j.cancelled.Load() {
					break
				}
				action := s.action
				if j.cfg.ConvergeTogether && action == itx.Done {
					// Vote, but keep iterating until the whole round agrees.
					j.votes.Add(1)
					action = itx.Commit
				}
				converged, rolledBack := s.ctx.Finalize(action)
				j.beats.Add(1)
				if rolledBack {
					j.cnt.rollbacks.Add(1)
				} else {
					j.cnt.commits.Add(1)
					if o != nil {
						o.Inc(w, obs.Commits)
					}
				}
				if converged {
					s.converged = true
					b.live--
					j.state.Retire(1)
				}
			}
		}
	}
	busy := int64(time.Since(t0))
	j.cnt.busy[w].Add(busy)
	if o != nil {
		o.AddBusy(w, busy)
		o.RecordLatency(w, obs.BatchPassLatency, busy)
	}
	if tr := j.cfg.Tracer; tr != nil {
		tr.Span(w, trace.KindBatch, j.traceID, int64(phase), tr.Now()-busy, busy)
	}
}

// syncBarrier runs on the worker whose batch arrived last. After the
// execute phase it flips to install; after the install phase it settles
// the round: collective convergence, the iteration cap, telemetry, and —
// if work remains — the next round's execute phase.
func (p *Pool) syncBarrier(w int, j *Job, phase int32) {
	if phase == PhaseExecute {
		if j.cancelled.Load() {
			j.retireAll()
			return
		}
		if hook := j.cfg.BarrierHook; hook != nil {
			// Before the recorder and the phase store: no install of the
			// coming phase may start anywhere until the rendezvous releases.
			hook(j.rounds.Load(), PhaseInstall)
		}
		if rec := j.cfg.Recorder; rec != nil {
			// Logged before the phase store and the re-push, so every install
			// of the coming phase lands after this event in the history.
			rec.RecordBarrier(j.rounds.Load(), PhaseInstall)
		}
		j.phase.Store(PhaseInstall)
		j.arrived.Store(0)
		j.pushActive()
		return
	}
	r := j.rounds.Add(1)
	o := j.cfg.Observer
	if j.cancelled.Load() {
		j.retireAll()
	} else {
		unanimous := j.cfg.ConvergeTogether && j.roundLive > 0 &&
			j.votes.Load() == j.roundLive
		if vote := j.cfg.ConvergeVote; vote != nil && j.cfg.ConvergeTogether {
			// Called every round whatever the local tally — the hook is a
			// cross-shard rendezvous and every shard must arrive.
			unanimous = vote(unanimous)
		}
		if unanimous {
			// Unanimous: the global fixpoint is reached; retire everyone.
			j.retireAll()
		} else if j.cfg.MaxIterations > 0 && r >= j.cfg.MaxIterations && j.state.Live() > 0 {
			j.retireForced(w)
		}
	}
	live := j.state.Live()
	if o != nil {
		// One convergence-series point per barrier round.
		o.ObserveLive(live)
		o.RecordSample(live, j.cnt.commits.Load(), j.cnt.rollbacks.Load())
	}
	if live == 0 {
		return // the running-batch countdown finishes the job
	}
	j.votes.Store(0)
	j.roundLive = live
	if hook := j.cfg.BarrierHook; hook != nil {
		hook(r, PhaseExecute)
	}
	if rec := j.cfg.Recorder; rec != nil {
		rec.RecordBarrier(r, PhaseExecute)
	}
	j.phase.Store(PhaseExecute)
	j.arrived.Store(0)
	j.pushActive()
}

// pushActive re-enqueues every batch that still has live sub-transactions
// for the next phase. inFlight is stored before the first push so an
// arriving worker can never observe a stale barrier size.
func (j *Job) pushActive() {
	n := int64(0)
	for _, b := range j.batches {
		if b.live > 0 {
			n++
		}
	}
	j.inFlight.Store(n)
	now := int64(0)
	if j.instr {
		now = j.nanotime()
	}
	for _, b := range j.batches {
		if b.live > 0 {
			b.enq = now
			j.rq[b.home].Push(b)
		}
	}
	j.pool.notify()
}

// retireAll retires every live sub-transaction without touching the stats
// counters (collective convergence, cancellation).
func (j *Job) retireAll() {
	n := int64(0)
	for _, b := range j.batches {
		for _, s := range b.subs {
			if !s.converged {
				s.converged = true
				b.live--
				n++
			}
		}
	}
	if n > 0 {
		j.state.Retire(n)
	}
}

// retireForced retires every live sub-transaction, charging each to the
// iteration-cap counters.
func (j *Job) retireForced(w int) {
	o := j.cfg.Observer
	n := int64(0)
	for _, b := range j.batches {
		for _, s := range b.subs {
			if !s.converged {
				s.converged = true
				b.live--
				n++
				j.cnt.forcedStops.Add(1)
				if o != nil {
					o.Inc(w, obs.ForcedStopIters)
				}
			}
		}
	}
	if n > 0 {
		j.state.Retire(n)
	}
}

// drainBatch retires a cancelled job's batch without running it.
func (j *Job) drainBatch(b *batch) {
	n := int64(0)
	for _, s := range b.subs {
		if !s.converged {
			s.converged = true
			b.live--
			n++
		}
	}
	if n > 0 {
		j.state.Retire(n)
	}
}

// finishJob settles a job exactly once: stop the watchdog and sampler,
// freeze the stats, deregister from the pool, and release waiters. The
// watchdog's stall conviction calls it directly (from the watchdog
// goroutine) when a wedged worker can never reach a scheduling point, so
// everything here must tolerate workers still touching the job's counters
// afterwards — they only ever see the frozen copy through Wait/Stats.
func (p *Pool) finishJob(j *Job) {
	if !j.finished.CompareAndSwap(false, true) {
		return
	}
	if f := j.stopWatchdog.Load(); f != nil {
		(*f)()
	}
	j.stopSampler()
	j.final.Rounds = j.rounds.Load()
	j.final.Elapsed = time.Since(j.start)
	j.cnt.into(&j.final)
	if f := j.failure.Load(); f != nil {
		j.err = f.err
	} else if j.cancelled.Load() {
		j.err = ErrJobCancelled
	}
	if tr := j.cfg.Tracer; tr != nil {
		dur := int64(j.final.Elapsed)
		tr.Span(0, trace.KindJob, j.traceID, 0, tr.Now()-dur, dur)
		if j.err != nil {
			tr.Instant(0, trace.KindAbort, j.traceID, abortReason(j.err))
		}
	}
	p.removeJob(j)
	close(j.done)
}

// abortReason maps a job's terminal error to the trace event's reason code.
func abortReason(err error) int64 {
	switch {
	case errors.Is(err, resilience.ErrJobPanicked):
		return trace.AbortPanic
	case errors.Is(err, resilience.ErrJobStalled):
		return trace.AbortStall
	case errors.Is(err, resilience.ErrJobDeadline):
		return trace.AbortDeadline
	case errors.Is(err, ErrJobCancelled):
		return trace.AbortCancelled
	}
	return trace.AbortError
}

// deadlineForceGrace is how long a deadline-expired job is given to drain
// cooperatively before the watchdog force-finishes it. Healthy workers
// retire queued batches within microseconds of the conviction; the grace
// only matters when a worker is wedged inside user code and can never reach
// a scheduling point — without the fallback, a deadline-only job
// (StallTimeout unset) would hang Wait forever.
const deadlineForceGrace = 100 * time.Millisecond

// startWatchdog arms the job's deadline/stall supervision when configured;
// returns the stop function (a no-op when unconfigured). On deadline expiry
// the job fails and drains cooperatively, with a force-finish fallback after
// deadlineForceGrace in case a wedged worker never drains it; on a stall
// conviction the job is force-finished immediately — the missing heartbeats
// already proved nobody is draining. Either way Wait must not hang on a job
// that stopped making progress; callers that need the stronger "nothing
// still in flight" guarantee follow Wait with Quiesce.
func (j *Job) startWatchdog() func() {
	cfg := resilience.WatchConfig{Deadline: j.cfg.Deadline, StallTimeout: j.cfg.StallTimeout}
	if cfg.Deadline <= 0 && cfg.StallTimeout <= 0 {
		return func() {}
	}
	p := j.pool
	return resilience.Watch(cfg, j.beats.Load, func(err error) {
		if errors.Is(err, resilience.ErrJobDeadline) {
			// Arm the cooperative half: per-finalize ForceDeadline checks
			// retire an active-but-nonconvergent job mid-batch without the
			// hot path ever reading the clock.
			j.state.ExpireDeadline()
		}
		j.fail(err)
		if o := j.cfg.Observer; o != nil {
			if errors.Is(err, resilience.ErrJobStalled) {
				o.Inc(0, obs.StallAborts)
			} else {
				o.Inc(0, obs.DeadlineAborts)
			}
		}
		p.notify()
		if errors.Is(err, resilience.ErrJobStalled) {
			p.finishJob(j)
		} else {
			// finishJob is CAS-guarded, so the fallback is a no-op on a job
			// the drain already finished.
			time.AfterFunc(deadlineForceGrace, func() { p.finishJob(j) })
		}
	})
}

// Job is one uber-transaction's execution in flight on a Pool: its
// batches, isolation options, convergence state, and counters. Concurrent
// jobs on the same pool are fully independent — each has its own queues,
// barrier, caps, and observer.
type Job struct {
	id      uint64
	traceID uint64 // id stamped on trace events: cfg.TraceID, or id
	label   string
	pool  *Pool
	opts  isolation.Options
	cfg   JobConfig

	state   *itx.JobState
	rq      []*queue.Queue[*batch] // per-region queues holding this job's batches
	batches []*batch
	cnt     *counters
	start   time.Time
	total   int64 // sub-transactions submitted
	instr   bool  // Observer or Tracer attached: stamp queue/barrier clocks

	// firstArrive is the nanotime stamp of the current sync round-phase's
	// first barrier arrival (0 between phases); the last arriver swaps it
	// out to compute the round's arrival skew.
	firstArrive atomic.Int64

	// Synchronous-barrier state; see processSync.
	syncMode  bool
	phase     atomic.Int32
	inFlight  atomic.Int64 // batches pushed for the current phase
	arrived   atomic.Int64 // batches that completed the current phase
	votes     atomic.Int64 // ConvergeTogether Done votes this round
	roundLive int64        // live subs at round start; written only at barriers
	rounds    atomic.Uint64

	running   atomic.Int64 // batches being processed right now
	cancelled atomic.Bool
	finished  atomic.Bool
	held      atomic.Bool // submitted with Hold, not yet Released

	// Supervision state: beats is the iteration heartbeat the watchdog
	// samples; failure holds the first terminal error (panic, stall,
	// deadline) and wins over plain cancellation in Wait.
	beats        atomic.Uint64
	failure      atomic.Pointer[jobFailure]
	stopWatchdog atomic.Pointer[func()]

	stopSampler func()
	final       Stats
	err         error
	done        chan struct{}
}

// jobFailure boxes a job's terminal error for atomic first-writer-wins
// publication.
type jobFailure struct{ err error }

// fail records the job's terminal error — the first failure wins — and
// cancels the job so queued batches drain instead of executing. Wait then
// reports the failure instead of ErrJobCancelled.
func (j *Job) fail(err error) {
	if j.failure.CompareAndSwap(nil, &jobFailure{err: err}) {
		j.cancelled.Store(true)
	}
}

// nanotime returns nanoseconds since the job started — the monotonic stamp
// used for queue-wait and barrier-skew measurement.
func (j *Job) nanotime() int64 { return int64(time.Since(j.start)) }

// Beats returns the job's iteration heartbeat count: one tick per
// sub-transaction execution (and per synchronous finalize). The watchdog
// samples it; tests use it to assert progress.
func (j *Job) Beats() uint64 { return j.beats.Load() }

// Live returns the number of not-yet-retired sub-transactions.
func (j *Job) Live() int64 { return j.state.Live() }

// Total returns the number of sub-transactions the job was submitted with.
func (j *Job) Total() int64 { return j.total }

// Started returns when the job was submitted.
func (j *Job) Started() time.Time { return j.start }

// Deadline returns the job's wall-clock budget (0 = unbounded).
func (j *Job) Deadline() time.Duration { return j.cfg.Deadline }

// Finished reports whether the job has settled (Wait would not block).
func (j *Job) Finished() bool { return j.finished.Load() }

// Err returns the terminal error of a finished job (nil while running or
// after a clean convergence).
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return nil
	}
}

// ID returns the pool-unique job id.
func (j *Job) ID() uint64 { return j.id }

// Label returns the telemetry label (JobConfig.Label or "job-<id>").
func (j *Job) Label() string { return j.label }

// Done returns a channel closed when the job has finished.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finished and returns its final stats. The
// error is ErrJobCancelled when the job was cancelled.
//
// After a forced retirement (a stall conviction, or a deadline whose
// cooperative drain timed out) a worker wedged inside user code may still be
// executing when Wait returns; its attempt can no longer validate or
// install anything, but callers about to tear down or reuse the job's
// tables (abort, resubmit) must first Quiesce.
func (j *Job) Wait() (Stats, error) {
	<-j.done
	return j.final, j.err
}

// Quiesce blocks until no pool worker is processing this job's batches, or
// until timeout elapses (timeout <= 0 waits forever); it reports whether the
// job quiesced. After a natural finish it returns immediately; after a
// forced retirement it returns once every in-flight worker has acknowledged
// the cancellation — the precondition for safely aborting the
// uber-transaction or resubmitting the same sub-transactions, which share
// state with any still-wedged attempt.
func (j *Job) Quiesce(timeout time.Duration) bool {
	if j.running.Load() == 0 {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		time.Sleep(50 * time.Microsecond)
		if j.running.Load() == 0 {
			return true
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return false
		}
	}
}

// Cancel asks the job to stop: queued batches are drained instead of
// executed, and a synchronous job stops at its next barrier. Wait then
// returns ErrJobCancelled. Cancelling a finished job is a no-op.
func (j *Job) Cancel() {
	if j.finished.Load() {
		return
	}
	j.cancelled.Store(true)
}

// Stats returns the final stats of a finished job, or a live snapshot of a
// running one.
func (j *Job) Stats() Stats {
	select {
	case <-j.done:
		return j.final
	default:
	}
	var s Stats
	s.Rounds = j.rounds.Load()
	s.Elapsed = time.Since(j.start)
	j.cnt.into(&s)
	return s
}

// startSampler launches the periodic convergence sampler of the queued
// schedulers when telemetry is enabled; the synchronous scheduler samples
// per barrier round instead. Returns the stop function.
func (j *Job) startSampler() func() {
	o := j.cfg.Observer
	if o == nil || j.syncMode {
		return func() {}
	}
	record := func() {
		o.RecordSample(j.state.Live(), j.cnt.commits.Load(), j.cnt.rollbacks.Load())
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(sampleInterval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				record()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		record() // final point: job complete
	}
}

package exec

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/resilience"
	"db4ml/internal/storage"
)

// panicSub panics on its Nth execution (1-based); before and after, it
// behaves like a counter sub that converges at target.
type panicSub struct {
	rec     *storage.IterativeRecord
	target  uint64
	panicAt int64
	execs   *atomic.Int64 // shared across subs so "the job's Nth execution" is well-defined
	buf     storage.Payload
	reached uint64
}

func (s *panicSub) Begin(c *itx.Ctx) { s.buf = make(storage.Payload, 1) }
func (s *panicSub) Execute(c *itx.Ctx) {
	if s.execs.Add(1) == s.panicAt {
		panic("planted sub-transaction panic")
	}
	c.Read(s.rec, s.buf)
	s.buf[0]++
	s.reached = s.buf[0]
	c.Write(s.rec, s.buf)
}
func (s *panicSub) Validate(c *itx.Ctx) itx.Action {
	if s.reached >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// blockSub blocks inside Execute until release is closed — a wedged worker.
type blockSub struct {
	rec     *storage.IterativeRecord
	release chan struct{}
	blocked chan struct{} // closed once the sub is inside Execute
	once    atomic.Bool
}

func (s *blockSub) Begin(c *itx.Ctx) {}
func (s *blockSub) Execute(c *itx.Ctx) {
	if s.once.CompareAndSwap(false, true) {
		close(s.blocked)
	}
	<-s.release
}
func (s *blockSub) Validate(c *itx.Ctx) itx.Action { return itx.Done }

// spinSub never converges: it commits forever (no Done, no caps).
type spinSub struct {
	rec *storage.IterativeRecord
	buf storage.Payload
}

func (s *spinSub) Begin(c *itx.Ctx) { s.buf = make(storage.Payload, 1) }
func (s *spinSub) Execute(c *itx.Ctx) {
	c.Read(s.rec, s.buf)
	s.buf[0]++
	c.Write(s.rec, s.buf)
}
func (s *spinSub) Validate(c *itx.Ctx) itx.Action { return itx.Commit }

func newPanicJob(n int, target uint64, panicAt int64) []itx.Sub {
	execs := &atomic.Int64{}
	subs := make([]itx.Sub, n)
	for i := range subs {
		subs[i] = &panicSub{
			rec:     storage.NewIterativeRecord(storage.Payload{0}, 1),
			target:  target,
			panicAt: panicAt,
			execs:   execs,
		}
	}
	return subs
}

// TestPanicContainedQueued: a panic in an asynchronous job's Execute must
// become ErrJobPanicked from Wait — with the stack attached — not a process
// crash, and the pool must keep serving other jobs afterwards.
func TestPanicContainedQueued(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	j, err := p.Submit(newPanicJob(16, 50, 20), async(), JobConfig{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := j.Wait()
	if !errors.Is(err, resilience.ErrJobPanicked) {
		t.Fatalf("Wait = %v, want ErrJobPanicked", err)
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not carry a PanicError", err)
	}
	if pe.Value != "planted sub-transaction panic" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "Execute") {
		t.Fatalf("stack does not point at the panicking callback:\n%s", pe.Stack)
	}
	if stats.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", stats.Panics)
	}

	// The pool survived: a healthy job still runs to convergence.
	subs, _ := newCounterSubs(32, 5)
	j2, err := p.Submit(subs, async(), JobConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatalf("pool unusable after contained panic: %v", err)
	}
}

// TestPanicContainedSync: the same containment under the synchronous
// barrier — the panicking batch must still arrive so the round ends.
func TestPanicContainedSync(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	j, err := p.Submit(newPanicJob(16, 50, 20), isolation.Options{Level: isolation.Synchronous}, JobConfig{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var werr error
	go func() { _, werr = j.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("synchronous job hung after a contained panic")
	}
	if !errors.Is(werr, resilience.ErrJobPanicked) {
		t.Fatalf("Wait = %v, want ErrJobPanicked", werr)
	}
}

// TestWatchdogConvictsStalledJob: a worker wedged inside Execute must not
// hang Wait; the watchdog convicts the job with ErrJobStalled while the
// wedged worker is still blocked.
func TestWatchdogConvictsStalledJob(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	bs := &blockSub{
		rec:     storage.NewIterativeRecord(storage.Payload{0}, 1),
		release: make(chan struct{}),
		blocked: make(chan struct{}),
	}
	j, err := p.Submit([]itx.Sub{bs}, async(), JobConfig{BatchSize: 1, StallTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	<-bs.blocked
	start := time.Now()
	_, werr := j.Wait()
	if !errors.Is(werr, resilience.ErrJobStalled) {
		t.Fatalf("Wait = %v, want ErrJobStalled", werr)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("stall conviction took %v", e)
	}
	// Release the wedged worker; the pool must drain and close cleanly.
	close(bs.release)
	p.Close()
}

// TestDeadlineRetiresNonConvergentJob: the acceptance scenario — a planted
// job that never votes Done and has no iteration cap must be retired with
// ErrJobDeadline within its deadline (plus scheduling slack), not hang.
func TestDeadlineRetiresNonConvergentJob(t *testing.T) {
	for _, level := range []isolation.Level{isolation.Asynchronous, isolation.Synchronous} {
		p, err := NewPool(Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		subs := make([]itx.Sub, 8)
		for i := range subs {
			subs[i] = &spinSub{rec: storage.NewIterativeRecord(storage.Payload{0}, 1)}
		}
		const deadline = 150 * time.Millisecond
		start := time.Now()
		j, err := p.Submit(subs, isolation.Options{Level: level}, JobConfig{BatchSize: 2, Deadline: deadline})
		if err != nil {
			t.Fatal(err)
		}
		stats, werr := j.Wait()
		elapsed := time.Since(start)
		if !errors.Is(werr, resilience.ErrJobDeadline) {
			t.Fatalf("%v: Wait = %v, want ErrJobDeadline", level, werr)
		}
		if elapsed > 10*deadline {
			t.Fatalf("%v: deadline enforced only after %v", level, elapsed)
		}
		if stats.Executions == 0 {
			t.Fatalf("%v: job retired before doing any work", level)
		}
		if j.Beats() == 0 {
			t.Fatalf("%v: no heartbeats recorded", level)
		}
		p.Close()
	}
}

// TestDeadlineDoesNotFireOnConvergedJob: a job that converges well inside
// its deadline must report success.
func TestDeadlineDoesNotFireOnConvergedJob(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	subs, _ := newCounterSubs(32, 5)
	j, err := p.Submit(subs, async(), JobConfig{BatchSize: 8, Deadline: 30 * time.Second, StallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatalf("healthy job under watchdog failed: %v", err)
	}
}

// blockWriteSub blocks inside Execute until release is closed, then buffers
// a write and votes Done — a wedged worker that wakes after the watchdog
// already convicted the job. Its write must never install.
type blockWriteSub struct {
	rec     *storage.IterativeRecord
	release chan struct{}
	blocked chan struct{}
	once    atomic.Bool
	buf     storage.Payload
}

func (s *blockWriteSub) Begin(c *itx.Ctx) { s.buf = make(storage.Payload, 1) }
func (s *blockWriteSub) Execute(c *itx.Ctx) {
	if s.once.CompareAndSwap(false, true) {
		close(s.blocked)
	}
	<-s.release
	c.Read(s.rec, s.buf)
	s.buf[0] = 999
	c.Write(s.rec, s.buf)
}
func (s *blockWriteSub) Validate(c *itx.Ctx) itx.Action { return itx.Done }

// TestDeadlineForceFinishesWedgedJob: with only a Deadline configured (no
// StallTimeout), a worker wedged inside user code must not hang Wait — the
// watchdog's post-deadline drain grace force-finishes the job.
func TestDeadlineForceFinishesWedgedJob(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := &blockSub{
		rec:     storage.NewIterativeRecord(storage.Payload{0}, 1),
		release: make(chan struct{}),
		blocked: make(chan struct{}),
	}
	const deadline = 100 * time.Millisecond
	j, err := p.Submit([]itx.Sub{bs}, async(), JobConfig{BatchSize: 1, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	<-bs.blocked
	start := time.Now()
	_, werr := j.Wait()
	if !errors.Is(werr, resilience.ErrJobDeadline) {
		t.Fatalf("Wait = %v, want ErrJobDeadline", werr)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("deadline-only force-finish took %v", e)
	}
	close(bs.release)
	if !j.Quiesce(5 * time.Second) {
		t.Fatal("released job did not quiesce")
	}
	p.Close()
}

// TestQuiesceAfterForcedRetirement: after a stall conviction Wait resolves
// while the wedged worker is still inside Execute; Quiesce must report that
// and then succeed once the worker is released — and the attempt the worker
// finishes must not install its buffered write.
func TestQuiesceAfterForcedRetirement(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := &blockWriteSub{
		rec:     storage.NewIterativeRecord(storage.Payload{0}, 1),
		release: make(chan struct{}),
		blocked: make(chan struct{}),
	}
	j, err := p.Submit([]itx.Sub{bs}, async(), JobConfig{BatchSize: 1, StallTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	<-bs.blocked
	if _, werr := j.Wait(); !errors.Is(werr, resilience.ErrJobStalled) {
		t.Fatalf("Wait = %v, want ErrJobStalled", werr)
	}
	if j.Quiesce(20 * time.Millisecond) {
		t.Fatal("Quiesce reported true while the worker is still wedged")
	}
	close(bs.release)
	if !j.Quiesce(5 * time.Second) {
		t.Fatal("released job did not quiesce")
	}
	// The woken worker saw the cancellation between Execute and Finalize:
	// nothing of the convicted attempt may have installed.
	if got := bs.rec.Latest(); got != 0 {
		t.Fatalf("convicted attempt installed %d snapshots, want 0", got)
	}
	if v := bs.rec.LatestSnapshot()[0]; v != 0 {
		t.Fatalf("record value = %d after convicted attempt, want 0", v)
	}
	p.Close()
}

// TestFailureWinsOverCancellation: a job that both panicked and was
// cancelled reports the failure — the richer verdict — from Wait.
func TestFailureWinsOverCancellation(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	j, err := p.Submit(newPanicJob(8, 1_000_000, 5), async(), JobConfig{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	j.Cancel() // post-failure cancel must not mask the panic
	if _, werr := j.Wait(); !errors.Is(werr, resilience.ErrJobPanicked) {
		t.Fatalf("Wait = %v, want ErrJobPanicked", werr)
	}
}

package exec

import (
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
)

// fixpointSub computes v = left/2 + 1 over a ring — a contraction whose
// global fixpoint is v = 2 everywhere. A node's value can be momentarily
// stable while its left neighbor still moves, so per-node retirement stops
// early with wrong values; ConvergeTogether must reach the exact fixpoint.
type fixpointSub struct {
	mine, left *storage.IterativeRecord
	buf        storage.Payload
	cur, prev  float64
}

func (s *fixpointSub) Begin(ctx *itx.Ctx) { s.buf = make(storage.Payload, 1) }

func (s *fixpointSub) Execute(ctx *itx.Ctx) {
	ctx.Read(s.left, s.buf)
	s.prev = s.cur
	s.cur = s.buf.Float64(0)/2 + 1
	s.buf.SetFloat64(0, s.cur)
	ctx.Write(s.mine, s.buf)
}

func (s *fixpointSub) Validate(ctx *itx.Ctx) itx.Action {
	if d := s.cur - s.prev; d < 1e-12 && d > -1e-12 && ctx.Iteration() > 0 {
		return itx.Done
	}
	return itx.Commit
}

func ringFixpoint(t *testing.T, convergeTogether bool) ([]float64, Stats) {
	t.Helper()
	const n = 32
	recs := make([]*storage.IterativeRecord, n)
	for i := range recs {
		// Heterogeneous starting points so stabilization times differ.
		init := make(storage.Payload, 1)
		init.SetFloat64(0, float64(i*7%13))
		recs[i] = storage.NewIterativeRecord(init, 1)
	}
	subs := make([]itx.Sub, n)
	for i := range subs {
		subs[i] = &fixpointSub{mine: recs[i], left: recs[(i+n-1)%n]}
	}
	e := New(Config{Workers: 4, ConvergeTogether: convergeTogether},
		isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	out := make(storage.Payload, 1)
	vals := make([]float64, n)
	for i, rec := range recs {
		rec.ReadRelaxed(out)
		vals[i] = out.Float64(0)
	}
	return vals, stats
}

func TestConvergeTogetherReachesGlobalFixpoint(t *testing.T) {
	vals, stats := ringFixpoint(t, true)
	for i, v := range vals {
		if d := v - 2; d > 1e-9 || d < -1e-9 {
			t.Fatalf("node %d = %v, want global fixpoint 2 (stats %+v)", i, v, stats)
		}
	}
	if stats.Rounds < 3 {
		t.Fatalf("suspiciously few rounds: %d", stats.Rounds)
	}
}

func TestPerNodeRetirementStopsEarly(t *testing.T) {
	// Documents why ConvergeTogether exists: with per-node retirement the
	// same computation generally ends off the fixpoint.
	vals, _ := ringFixpoint(t, false)
	offFixpoint := false
	for _, v := range vals {
		if d := v - 2; d > 1e-9 || d < -1e-9 {
			offFixpoint = true
		}
	}
	if !offFixpoint {
		t.Skip("per-node retirement happened to reach the fixpoint on this schedule")
	}
}

func TestConvergeTogetherRespectsMaxIterations(t *testing.T) {
	const n = 8
	recs := make([]*storage.IterativeRecord, n)
	subs := make([]itx.Sub, n)
	for i := range subs {
		recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 1)
		subs[i] = &neverDoneSub{rec: recs[i]}
	}
	e := New(Config{Workers: 2, MaxIterations: 4, ConvergeTogether: true},
		isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	if stats.Rounds != 4 || stats.ForcedStops != n {
		t.Fatalf("stats = %+v", stats)
	}
}

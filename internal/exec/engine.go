// Package exec implements DB4ML's execution engine for iterative
// sub-transactions (Section 4.1 and Figure 2). Sub-transactions are
// pre-grouped into batches (Section 5.2) that circulate through per-NUMA-
// region lock-free queues; worker goroutines — stand-ins for the paper's
// core-pinned threads — pop a batch from their region's queue, run one
// iteration of every live sub-transaction in it, and re-enqueue the batch
// until it has converged batch-wise.
//
// The synchronous isolation level replaces queue circulation with a
// per-iteration barrier (Section 5.1): every round, workers first execute
// all live sub-transactions (writes buffered), synchronize, then validate
// and install — a parallelized bulk-synchronous execution with no version
// checking at all.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/queue"
)

// DefaultBatchSize is the paper's optimal batch size (Figure 10(b)).
const DefaultBatchSize = 256

// Config tunes the executor.
type Config struct {
	// Workers is the number of worker goroutines; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Topology is the simulated NUMA layout; defaults to
	// numa.PaperTopology(Workers).
	Topology numa.Topology
	// BatchSize is the number of sub-transactions per scheduling batch;
	// defaults to DefaultBatchSize.
	BatchSize int
	// MaxIterations, when nonzero, force-retires any sub-transaction that
	// has committed this many iterations without returning Done. It
	// implements the paper's "pre-set and fixed number of iterations"
	// convergence cap.
	MaxIterations uint64
	// IterationHook, when non-nil, runs before every sub-transaction
	// execution with the worker id. Experiments use it to inject
	// stragglers (Figure 9).
	IterationHook func(worker int)
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively: a Done verdict counts as a vote, and everyone retires
	// only in a round where every live sub-transaction voted Done. This
	// is the global convergence criterion of bulk-synchronous engines
	// like Galois — a node whose value is momentarily stable keeps
	// recomputing while its neighborhood still moves, which is required
	// for DB4ML's synchronous PageRank to reproduce Galois' exact
	// fixpoint (Section 7.2.1).
	ConvergeTogether bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Topology.Regions == 0 {
		c.Topology = numa.PaperTopology(c.Workers)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	return c
}

// Resolved returns the configuration with all defaults filled in, so
// callers can see the worker count and topology a Run will actually use.
func (c Config) Resolved() Config { return c.withDefaults() }

// Stats reports what one Run did.
type Stats struct {
	// Executions counts Execute calls (including rolled-back iterations).
	Executions uint64
	// Commits counts iterations whose updates were installed.
	Commits uint64
	// Rollbacks counts iterations discarded by user request or staleness
	// violation.
	Rollbacks uint64
	// ForcedStops counts sub-transactions retired by MaxIterations.
	ForcedStops uint64
	// Rounds counts barrier rounds (synchronous level only).
	Rounds uint64
	// Elapsed is the wall-clock duration of the Run.
	Elapsed time.Duration
	// AvgWorkerBusy and MaxWorkerBusy aggregate the time each worker
	// spent actually processing sub-transactions (excluding idle
	// spinning), the per-worker runtime Figure 9 reports.
	AvgWorkerBusy time.Duration
	MaxWorkerBusy time.Duration
}

// Engine executes the sub-transactions of one uber-transaction.
type Engine struct {
	cfg  Config
	opts isolation.Options
}

// New builds an engine for the given configuration and isolation options.
func New(cfg Config, opts isolation.Options) *Engine {
	return &Engine{cfg: cfg.withDefaults(), opts: opts}
}

// sched is one scheduled sub-transaction with its reusable context.
type sched struct {
	sub       itx.Sub
	ctx       *itx.Ctx
	begun     bool
	converged bool
	action    itx.Action // sync level: verdict carried between phases
}

// batch groups sub-transactions for scheduling; the queues hold batches,
// not individual sub-transactions (Section 5.2).
type batch struct {
	subs []*sched
	live int64 // non-converged subs in this batch; owned by the processing worker
}

// Run drives subs until every one of them converged (or hit
// MaxIterations). regionOf assigns each sub-transaction (by its index) to
// a NUMA region for queue routing and should match the data partitioning;
// nil distributes round-robin. Run blocks until completion.
func (e *Engine) Run(subs []itx.Sub, regionOf func(i int) int) Stats {
	start := time.Now()
	regions := e.cfg.Topology.Regions
	if regionOf == nil {
		regionOf = func(i int) int { return i % regions }
	}
	perRegion := make([][]*sched, regions)
	for i, sub := range subs {
		s := &sched{sub: sub, ctx: itx.NewCtx(e.opts, -1)}
		r := regionOf(i) % regions
		if r < 0 {
			r = 0
		}
		perRegion[r] = append(perRegion[r], s)
	}

	var stats Stats
	if e.opts.Level == isolation.Synchronous {
		e.runSync(perRegion, &stats)
	} else {
		e.runQueued(perRegion, &stats)
	}
	stats.Elapsed = time.Since(start)
	return stats
}

// counters aggregates hot-path statistics with atomics.
type counters struct {
	executions  atomic.Uint64
	commits     atomic.Uint64
	rollbacks   atomic.Uint64
	forcedStops atomic.Uint64
	busy        []atomic.Int64 // per-worker processing nanoseconds
}

func newCounters(workers int) *counters {
	return &counters{busy: make([]atomic.Int64, workers)}
}

func (c *counters) into(stats *Stats) {
	stats.Executions += c.executions.Load()
	stats.Commits += c.commits.Load()
	stats.Rollbacks += c.rollbacks.Load()
	stats.ForcedStops += c.forcedStops.Load()
	var sum, max int64
	for i := range c.busy {
		b := c.busy[i].Load()
		sum += b
		if b > max {
			max = b
		}
	}
	if len(c.busy) > 0 {
		stats.AvgWorkerBusy = time.Duration(sum / int64(len(c.busy)))
		stats.MaxWorkerBusy = time.Duration(max)
	}
}

// runQueued is the asynchronous / bounded-staleness scheduler: batches
// circulate through per-region lock-free queues until batch-wise
// convergence (step 4/5 of Figure 2).
func (e *Engine) runQueued(perRegion [][]*sched, stats *Stats) {
	regions := len(perRegion)
	queues := make([]*queue.Queue[*batch], regions)
	var remaining atomic.Int64
	for r := range queues {
		queues[r] = queue.New[*batch]()
		for lo := 0; lo < len(perRegion[r]); lo += e.cfg.BatchSize {
			hi := lo + e.cfg.BatchSize
			if hi > len(perRegion[r]) {
				hi = len(perRegion[r])
			}
			b := &batch{subs: perRegion[r][lo:hi], live: int64(hi - lo)}
			remaining.Add(b.live)
			queues[r].Push(b)
		}
	}

	cnt := newCounters(e.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := e.cfg.Topology.RegionOf(w)
			q := queues[region]
			for remaining.Load() > 0 {
				b, ok := q.Pop()
				if !ok {
					// The region's work is drained or in flight on other
					// workers; yield instead of spinning hard.
					runtime.Gosched()
					continue
				}
				t0 := time.Now()
				committed := e.processBatch(w, b, cnt, &remaining)
				cnt.busy[w].Add(int64(time.Since(t0)))
				if b.live > 0 {
					q.Push(b)
					if committed == 0 {
						// Every live sub-transaction rolled back (e.g.
						// SSP-throttled behind a straggler): back off
						// instead of spin-retrying at full speed.
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	cnt.into(stats)
}

// processBatch runs one iteration of every live sub-transaction in b and
// returns the number of committed iterations.
func (e *Engine) processBatch(w int, b *batch, cnt *counters, remaining *atomic.Int64) int {
	committed := 0
	for _, s := range b.subs {
		if s.converged {
			continue
		}
		if e.cfg.IterationHook != nil {
			e.cfg.IterationHook(w)
		}
		s.ctx.SetWorker(w)
		if !s.begun {
			s.sub.Begin(s.ctx)
			s.begun = true
		}
		s.sub.Execute(s.ctx)
		cnt.executions.Add(1)
		action := s.sub.Validate(s.ctx)
		converged, rolledBack := s.ctx.Finalize(action)
		if rolledBack {
			cnt.rollbacks.Add(1)
		} else {
			cnt.commits.Add(1)
			committed++
		}
		if !converged && e.cfg.MaxIterations > 0 && s.ctx.Iteration() >= e.cfg.MaxIterations {
			converged = true
			cnt.forcedStops.Add(1)
		}
		if converged {
			s.converged = true
			b.live--
			remaining.Add(-1)
		}
	}
	return committed
}

// runSync is the synchronous scheduler: lockstep rounds separated by
// barriers, writes installed only after every execution of the round
// finished, so reads always observe exactly the previous round's snapshots
// with zero version checking (Section 5.1).
func (e *Engine) runSync(perRegion [][]*sched, stats *Stats) {
	// Static work assignment: worker w owns every sched at position k of
	// its region where k ≡ (w's rank within the region).
	shards := make([][]*sched, e.cfg.Workers)
	rankInRegion := make([]int, e.cfg.Workers)
	regionRank := make([]int, e.cfg.Topology.Regions)
	for w := 0; w < e.cfg.Workers; w++ {
		r := e.cfg.Topology.RegionOf(w)
		rankInRegion[w] = regionRank[r]
		regionRank[r]++
	}
	for w := 0; w < e.cfg.Workers; w++ {
		r := e.cfg.Topology.RegionOf(w)
		workersHere := e.cfg.Topology.WorkersIn(r)
		for k := rankInRegion[w]; k < len(perRegion[r]); k += workersHere {
			shards[w] = append(shards[w], perRegion[r][k])
		}
	}

	remaining := int64(0)
	for _, rg := range perRegion {
		remaining += int64(len(rg))
	}
	cnt := newCounters(e.cfg.Workers)
	var left atomic.Int64
	left.Store(remaining)

	for round := uint64(1); left.Load() > 0; round++ {
		if e.cfg.MaxIterations > 0 && round > e.cfg.MaxIterations {
			// Retire whatever is still live.
			for _, sh := range shards {
				for _, s := range sh {
					if !s.converged {
						s.converged = true
						cnt.forcedStops.Add(1)
						left.Add(-1)
					}
				}
			}
			break
		}
		stats.Rounds++
		// Phase A: execute everything, writes stay buffered.
		e.parallel(shards, cnt, func(w int, s *sched) {
			if e.cfg.IterationHook != nil {
				e.cfg.IterationHook(w)
			}
			s.ctx.SetWorker(w)
			if !s.begun {
				s.sub.Begin(s.ctx)
				s.begun = true
			}
			s.sub.Execute(s.ctx)
			cnt.executions.Add(1)
			s.action = s.sub.Validate(s.ctx)
		})
		// Barrier, then phase B: install and settle verdicts.
		var doneVotes atomic.Int64
		liveThisRound := left.Load()
		e.parallel(shards, cnt, func(w int, s *sched) {
			action := s.action
			if e.cfg.ConvergeTogether && action == itx.Done {
				// Vote, but keep iterating until the whole round agrees.
				doneVotes.Add(1)
				action = itx.Commit
			}
			converged, rolledBack := s.ctx.Finalize(action)
			if rolledBack {
				cnt.rollbacks.Add(1)
			} else {
				cnt.commits.Add(1)
			}
			if converged {
				s.converged = true
				left.Add(-1)
			}
		})
		if e.cfg.ConvergeTogether && doneVotes.Load() == liveThisRound {
			// Unanimous: the global fixpoint is reached; retire everyone.
			for _, sh := range shards {
				for _, s := range sh {
					if !s.converged {
						s.converged = true
						left.Add(-1)
					}
				}
			}
		}
	}
	cnt.into(stats)
}

// parallel runs fn over every live sched of every shard, one goroutine per
// worker, and waits for all of them — the barrier between phases. Each
// worker's processing time is charged to its busy counter.
func (e *Engine) parallel(shards [][]*sched, cnt *counters, fn func(w int, s *sched)) {
	var wg sync.WaitGroup
	for w := range shards {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for _, s := range shards[w] {
				if s.converged {
					continue
				}
				fn(w, s)
			}
			cnt.busy[w].Add(int64(time.Since(t0)))
		}(w)
	}
	wg.Wait()
}

// Package exec implements DB4ML's execution engine for iterative
// sub-transactions (Section 4.1 and Figure 2). The engine is a persistent
// Pool of worker goroutines — stand-ins for the paper's core-pinned
// threads — pinned to simulated NUMA regions and started once; each
// uber-transaction submitted to the pool becomes a Job whose
// sub-transactions are pre-grouped into batches (Section 5.2) that
// circulate through the job's per-region lock-free queues. Workers
// round-robin across the jobs active in their region, so many
// uber-transactions make progress concurrently on one set of cores.
//
// The synchronous isolation level replaces queue circulation with a
// cooperative per-job barrier (Section 5.1): every round, workers first
// execute all live sub-transactions (writes buffered), then — once every
// batch of the round arrived — validate and install. The barrier is
// per-job state, so a synchronous job never stalls the pool's other jobs.
package exec

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// Recorder extends the per-context history recorder (itx.Recorder) with
// executor-level events: the synchronous scheduler reports every barrier
// phase flip through it, which is what lets internal/check validate that no
// read or install ever crosses the barrier. A nil Recorder disables
// recording at zero cost.
type Recorder interface {
	itx.Recorder
	// RecordBarrier: the job's cooperative barrier flipped to the given
	// phase (PhaseExecute or PhaseInstall) of the given round.
	RecordBarrier(round uint64, phase int32)
}

// DefaultBatchSize is the paper's optimal batch size (Figure 10(b)).
const DefaultBatchSize = 256

// defaultAttemptFactor derives the livelock backstop: when MaxIterations is
// set but MaxAttempts is not, a sub-transaction is force-retired after
// MaxIterations×defaultAttemptFactor finalized attempts (committed or
// rolled back). A run would need a sustained rollback ratio above
// (factor-1)/factor ≈ 98% — perpetual rollback, not ordinary staleness
// churn — before the backstop fires ahead of the iteration cap.
const defaultAttemptFactor = 64

// sampleInterval is the convergence-series cadence of the queued
// schedulers' telemetry sampler (the synchronous scheduler samples per
// round instead).
const sampleInterval = 2 * time.Millisecond

func deriveMaxAttempts(maxIterations uint64) uint64 {
	if maxIterations > math.MaxUint64/defaultAttemptFactor {
		return math.MaxUint64
	}
	return maxIterations * defaultAttemptFactor
}

// Config tunes the executor. Workers, Topology, and DisableWorkStealing
// describe the pool; the remaining fields describe one job and are carried
// into its JobConfig by the convenience runners.
type Config struct {
	// Workers is the number of worker goroutines; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Topology is the simulated NUMA layout; defaults to
	// numa.PaperTopology(Workers).
	Topology numa.Topology
	// BatchSize is the number of sub-transactions per scheduling batch;
	// defaults to DefaultBatchSize.
	BatchSize int
	// MaxIterations, when nonzero, force-retires any sub-transaction that
	// has committed this many iterations without returning Done. It
	// implements the paper's "pre-set and fixed number of iterations"
	// convergence cap.
	MaxIterations uint64
	// MaxAttempts, when nonzero, force-retires any sub-transaction after
	// this many finalized attempts, counting rolled-back iterations that
	// MaxIterations ignores. It is the livelock backstop: a sub-transaction
	// that perpetually rolls back (e.g. SSP-throttled behind a straggler
	// that never advances) commits nothing and would otherwise circulate
	// forever. Defaults to MaxIterations×64 when MaxIterations is set.
	MaxAttempts uint64
	// DisableWorkStealing turns off the pool's cross-region work stealing,
	// strictly confining every batch to the workers of its home region.
	// Useful for locality measurements; costs idle cores when regionOf
	// skews work toward few regions.
	DisableWorkStealing bool
	// Observer, when non-nil, collects run telemetry (per-worker counters,
	// queue-depth gauges, a convergence time series; see internal/obs).
	// When nil — the default — every telemetry site in the hot path is a
	// single pointer nil-check.
	Observer *obs.Observer
	// Tracer, when non-nil, records the run's scheduling timeline (batch
	// passes, queue waits, barrier skew, steals, faults, aborts) into its
	// per-worker ring buffers; see internal/trace. nil — the default —
	// records nothing: every trace method is nil-receiver safe, so the hot
	// path pays one pointer test per site.
	Tracer *trace.Tracer
	// IterationHook, when non-nil, runs before every sub-transaction
	// execution with the worker id. Experiments use it to inject
	// stragglers (Figure 9).
	IterationHook func(worker int)
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively: a Done verdict counts as a vote, and everyone retires
	// only in a round where every live sub-transaction voted Done. This
	// is the global convergence criterion of bulk-synchronous engines
	// like Galois — a node whose value is momentarily stable keeps
	// recomputing while its neighborhood still moves, which is required
	// for DB4ML's synchronous PageRank to reproduce Galois' exact
	// fixpoint (Section 7.2.1).
	ConvergeTogether bool
	// Label names the run's job in telemetry snapshots; defaults to
	// "job-<id>".
	Label string
	// Chaos, when non-nil, injects scheduling faults (stalls, preemption,
	// forced rollbacks, steal perturbation, mid-batch cancellation) at the
	// pool's and the job's injection points. Test/experiment only; nil —
	// the default — keeps every site a single nil-check. See internal/chaos.
	Chaos chaos.Injector
	// Recorder, when non-nil, records the run's isolation-relevant history
	// (reads, validations, installs, barrier flips) for post-hoc invariant
	// checking. See internal/check.
	Recorder Recorder
	// Deadline, when nonzero, bounds the job's wall-clock runtime; past it
	// the job is retired with resilience.ErrJobDeadline. See
	// JobConfig.Deadline.
	Deadline time.Duration
	// StallTimeout, when nonzero, arms the progress watchdog that convicts
	// jobs whose iteration heartbeat stops (resilience.ErrJobStalled). See
	// JobConfig.StallTimeout.
	StallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Topology.Regions == 0 {
		c.Topology = numa.PaperTopology(c.Workers)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxAttempts == 0 && c.MaxIterations > 0 {
		c.MaxAttempts = deriveMaxAttempts(c.MaxIterations)
	}
	return c
}

// Resolved returns the configuration with all defaults filled in, so
// callers can see the worker count and topology a Run will actually use.
func (c Config) Resolved() Config { return c.withDefaults() }

// Validate rejects configurations that could not execute: a topology with
// more regions than workers leaves at least one region without any worker,
// and batches routed there starve forever once work stealing is disabled.
// Defaults are applied before checking, so a zero Config is valid.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Topology.Regions > c.Workers {
		return fmt.Errorf(
			"exec: %d workers cannot serve %d NUMA regions: a region would have no worker and its queue would starve once work stealing is disabled",
			c.Workers, c.Topology.Regions)
	}
	return nil
}

// jobConfig extracts the per-job fields of c for a Pool submission.
func (c Config) jobConfig(regionOf func(i int) int) JobConfig {
	return JobConfig{
		BatchSize:        c.BatchSize,
		MaxIterations:    c.MaxIterations,
		MaxAttempts:      c.MaxAttempts,
		RegionOf:         regionOf,
		IterationHook:    c.IterationHook,
		ConvergeTogether: c.ConvergeTogether,
		Observer:         c.Observer,
		Tracer:           c.Tracer,
		Label:            c.Label,
		Chaos:            c.Chaos,
		Recorder:         c.Recorder,
		Deadline:         c.Deadline,
		StallTimeout:     c.StallTimeout,
	}
}

// Stats reports what one job did.
type Stats struct {
	// Executions counts Execute calls (including rolled-back iterations).
	Executions uint64
	// Commits counts iterations whose updates were installed.
	Commits uint64
	// Rollbacks counts iterations discarded by user request or staleness
	// violation.
	Rollbacks uint64
	// ForcedStops counts sub-transactions retired by MaxIterations or the
	// MaxAttempts livelock backstop.
	ForcedStops uint64
	// Steals counts batches popped from another region's queue by workers
	// whose own region was drained (queued schedulers only).
	Steals uint64
	// Panics counts panics the supervision layer contained during this job
	// (each one failed the job with resilience.ErrJobPanicked).
	Panics uint64
	// Rounds counts barrier rounds (synchronous level only).
	Rounds uint64
	// Elapsed is the wall-clock duration of the job.
	Elapsed time.Duration
	// AvgWorkerBusy and MaxWorkerBusy aggregate the time each worker
	// spent actually processing sub-transactions (excluding idle
	// spinning), the per-worker runtime Figure 9 reports. The average is
	// taken over workers with nonzero busy time: workers that never
	// received a batch (more workers than work) would otherwise dilute it
	// toward zero.
	AvgWorkerBusy time.Duration
	MaxWorkerBusy time.Duration
}

// counters aggregates hot-path statistics with atomics.
type counters struct {
	executions  atomic.Uint64
	commits     atomic.Uint64
	rollbacks   atomic.Uint64
	forcedStops atomic.Uint64
	steals      atomic.Uint64
	panics      atomic.Uint64
	busy        []atomic.Int64 // per-worker processing nanoseconds
}

func newCounters(workers int) *counters {
	return &counters{busy: make([]atomic.Int64, workers)}
}

func (c *counters) into(stats *Stats) {
	stats.Executions += c.executions.Load()
	stats.Commits += c.commits.Load()
	stats.Rollbacks += c.rollbacks.Load()
	stats.ForcedStops += c.forcedStops.Load()
	stats.Steals += c.steals.Load()
	stats.Panics += c.panics.Load()
	var sum, max int64
	active := 0
	for i := range c.busy {
		b := c.busy[i].Load()
		sum += b
		if b > 0 {
			active++
		}
		if b > max {
			max = b
		}
	}
	if active > 0 {
		stats.AvgWorkerBusy = time.Duration(sum / int64(active))
		stats.MaxWorkerBusy = time.Duration(max)
	}
}

// sched is one scheduled sub-transaction with its reusable context.
type sched struct {
	sub       itx.Sub
	ctx       *itx.Ctx
	begun     bool
	converged bool
	action    itx.Action // sync level: verdict carried between phases
}

// batch groups sub-transactions for scheduling; the queues hold batches,
// not individual sub-transactions (Section 5.2).
type batch struct {
	subs []*sched
	home int   // region whose queue the batch recirculates through
	live int64 // non-converged subs in this batch; owned by the processing worker
	// enq stamps when the batch was pushed (nanoseconds since the job's
	// start; 0 = unstamped), the queue-wait measurement. Written by the
	// pusher before Push and read by the popper after Pop, so ownership
	// transfers with the batch like live. Only set while the job is
	// instrumented — uninstrumented jobs never read the clock here.
	enq int64
}

// Run drives subs to convergence on a throwaway pool: it builds a Pool
// from cfg, submits one job, waits, and shuts the pool down. regionOf
// assigns each sub-transaction (by its index) to a NUMA region for queue
// routing and should match the data partitioning; nil distributes
// round-robin. Long-lived callers should hold a Pool and use RunOn.
func Run(cfg Config, opts isolation.Options, subs []itx.Sub, regionOf func(i int) int) (Stats, error) {
	p, err := NewPool(cfg)
	if err != nil {
		return Stats{}, err
	}
	defer p.Close()
	return RunOn(p, cfg, opts, subs, regionOf)
}

// RunOn drives subs to convergence as one job on an existing pool,
// blocking until it finished. Only the per-job fields of cfg are used (the
// pool fixes workers, topology, and stealing); a nil pool falls back to
// Run's throwaway pool.
func RunOn(p *Pool, cfg Config, opts isolation.Options, subs []itx.Sub, regionOf func(i int) int) (Stats, error) {
	if p == nil {
		return Run(cfg, opts, subs, regionOf)
	}
	j, err := p.Submit(subs, opts, cfg.jobConfig(regionOf))
	if err != nil {
		return Stats{}, err
	}
	return j.Wait()
}

// Engine is the one-shot convenience wrapper around Run, kept for callers
// that drive a single uber-transaction start-to-finish.
type Engine struct {
	cfg  Config
	opts isolation.Options
}

// New builds an engine for the given configuration and isolation options.
func New(cfg Config, opts isolation.Options) *Engine {
	return &Engine{cfg: cfg.withDefaults(), opts: opts}
}

// Run drives subs until every one of them converged (or hit
// MaxIterations); it blocks until completion. It panics on a Config or
// isolation combination Pool.Submit would reject — use Run/RunOn for an
// error instead (the historical Engine signature has no error result).
func (e *Engine) Run(subs []itx.Sub, regionOf func(i int) int) Stats {
	stats, err := Run(e.cfg, e.opts, subs, regionOf)
	if err != nil {
		panic("exec: " + err.Error())
	}
	return stats
}

// Snapshot exports the telemetry collected by the configured observer
// (internal/obs); ok is false when Config.Observer is nil. It may be
// called while Run is in flight (a progress report) or afterwards (the
// full account of the last run).
func (e *Engine) Snapshot() (snap obs.Snapshot, ok bool) {
	if e.cfg.Observer == nil {
		return obs.Snapshot{}, false
	}
	return e.cfg.Observer.Snapshot(), true
}

// Package exec implements DB4ML's execution engine for iterative
// sub-transactions (Section 4.1 and Figure 2). Sub-transactions are
// pre-grouped into batches (Section 5.2) that circulate through per-NUMA-
// region lock-free queues; worker goroutines — stand-ins for the paper's
// core-pinned threads — pop a batch from their region's queue, run one
// iteration of every live sub-transaction in it, and re-enqueue the batch
// until it has converged batch-wise.
//
// The synchronous isolation level replaces queue circulation with a
// per-iteration barrier (Section 5.1): every round, workers first execute
// all live sub-transactions (writes buffered), synchronize, then validate
// and install — a parallelized bulk-synchronous execution with no version
// checking at all.
package exec

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/queue"
)

// DefaultBatchSize is the paper's optimal batch size (Figure 10(b)).
const DefaultBatchSize = 256

// defaultAttemptFactor derives the livelock backstop: when MaxIterations is
// set but MaxAttempts is not, a sub-transaction is force-retired after
// MaxIterations×defaultAttemptFactor finalized attempts (committed or
// rolled back). A run would need a sustained rollback ratio above
// (factor-1)/factor ≈ 98% — perpetual rollback, not ordinary staleness
// churn — before the backstop fires ahead of the iteration cap.
const defaultAttemptFactor = 64

// sampleInterval is the convergence-series cadence of the queued
// schedulers' telemetry sampler (the synchronous scheduler samples per
// round instead).
const sampleInterval = 2 * time.Millisecond

// Config tunes the executor.
type Config struct {
	// Workers is the number of worker goroutines; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Topology is the simulated NUMA layout; defaults to
	// numa.PaperTopology(Workers).
	Topology numa.Topology
	// BatchSize is the number of sub-transactions per scheduling batch;
	// defaults to DefaultBatchSize.
	BatchSize int
	// MaxIterations, when nonzero, force-retires any sub-transaction that
	// has committed this many iterations without returning Done. It
	// implements the paper's "pre-set and fixed number of iterations"
	// convergence cap.
	MaxIterations uint64
	// MaxAttempts, when nonzero, force-retires any sub-transaction after
	// this many finalized attempts, counting rolled-back iterations that
	// MaxIterations ignores. It is the livelock backstop: a sub-transaction
	// that perpetually rolls back (e.g. SSP-throttled behind a straggler
	// that never advances) commits nothing and would otherwise circulate
	// forever. Defaults to MaxIterations×64 when MaxIterations is set.
	MaxAttempts uint64
	// DisableWorkStealing turns off the queued schedulers' cross-region
	// work stealing, strictly confining every batch to the workers of its
	// home region. Useful for locality measurements; costs idle cores when
	// regionOf skews work toward few regions.
	DisableWorkStealing bool
	// Observer, when non-nil, collects run telemetry (per-worker counters,
	// queue-depth gauges, a convergence time series; see internal/obs).
	// When nil — the default — every telemetry site in the hot path is a
	// single pointer nil-check.
	Observer *obs.Observer
	// IterationHook, when non-nil, runs before every sub-transaction
	// execution with the worker id. Experiments use it to inject
	// stragglers (Figure 9).
	IterationHook func(worker int)
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively: a Done verdict counts as a vote, and everyone retires
	// only in a round where every live sub-transaction voted Done. This
	// is the global convergence criterion of bulk-synchronous engines
	// like Galois — a node whose value is momentarily stable keeps
	// recomputing while its neighborhood still moves, which is required
	// for DB4ML's synchronous PageRank to reproduce Galois' exact
	// fixpoint (Section 7.2.1).
	ConvergeTogether bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Topology.Regions == 0 {
		c.Topology = numa.PaperTopology(c.Workers)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxAttempts == 0 && c.MaxIterations > 0 {
		if c.MaxIterations > math.MaxUint64/defaultAttemptFactor {
			c.MaxAttempts = math.MaxUint64
		} else {
			c.MaxAttempts = c.MaxIterations * defaultAttemptFactor
		}
	}
	return c
}

// Resolved returns the configuration with all defaults filled in, so
// callers can see the worker count and topology a Run will actually use.
func (c Config) Resolved() Config { return c.withDefaults() }

// Stats reports what one Run did.
type Stats struct {
	// Executions counts Execute calls (including rolled-back iterations).
	Executions uint64
	// Commits counts iterations whose updates were installed.
	Commits uint64
	// Rollbacks counts iterations discarded by user request or staleness
	// violation.
	Rollbacks uint64
	// ForcedStops counts sub-transactions retired by MaxIterations or the
	// MaxAttempts livelock backstop.
	ForcedStops uint64
	// Steals counts batches popped from another region's queue by workers
	// whose own region was drained (queued schedulers only).
	Steals uint64
	// Rounds counts barrier rounds (synchronous level only).
	Rounds uint64
	// Elapsed is the wall-clock duration of the Run.
	Elapsed time.Duration
	// AvgWorkerBusy and MaxWorkerBusy aggregate the time each worker
	// spent actually processing sub-transactions (excluding idle
	// spinning), the per-worker runtime Figure 9 reports. The average is
	// taken over workers with nonzero busy time: workers that never
	// received a shard or batch (more workers than work) would otherwise
	// dilute it toward zero.
	AvgWorkerBusy time.Duration
	MaxWorkerBusy time.Duration
}

// Engine executes the sub-transactions of one uber-transaction.
type Engine struct {
	cfg  Config
	opts isolation.Options
}

// New builds an engine for the given configuration and isolation options.
func New(cfg Config, opts isolation.Options) *Engine {
	return &Engine{cfg: cfg.withDefaults(), opts: opts}
}

// sched is one scheduled sub-transaction with its reusable context.
type sched struct {
	sub       itx.Sub
	ctx       *itx.Ctx
	begun     bool
	converged bool
	action    itx.Action // sync level: verdict carried between phases
}

// batch groups sub-transactions for scheduling; the queues hold batches,
// not individual sub-transactions (Section 5.2).
type batch struct {
	subs []*sched
	home int   // region whose queue the batch recirculates through
	live int64 // non-converged subs in this batch; owned by the processing worker
}

// Run drives subs until every one of them converged (or hit
// MaxIterations). regionOf assigns each sub-transaction (by its index) to
// a NUMA region for queue routing and should match the data partitioning;
// nil distributes round-robin. Run blocks until completion.
func (e *Engine) Run(subs []itx.Sub, regionOf func(i int) int) Stats {
	start := time.Now()
	if e.cfg.Observer != nil {
		e.cfg.Observer.BeginRun(e.cfg.Workers)
	}
	regions := e.cfg.Topology.Regions
	if regionOf == nil {
		regionOf = func(i int) int { return i % regions }
	}
	perRegion := make([][]*sched, regions)
	for i, sub := range subs {
		s := &sched{sub: sub, ctx: itx.NewCtx(e.opts, -1)}
		s.ctx.SetObserver(e.cfg.Observer)
		r := regionOf(i) % regions
		if r < 0 {
			r = 0
		}
		perRegion[r] = append(perRegion[r], s)
	}

	var stats Stats
	if e.opts.Level == isolation.Synchronous {
		e.runSync(perRegion, &stats)
	} else {
		e.runQueued(perRegion, &stats)
	}
	stats.Elapsed = time.Since(start)
	return stats
}

// counters aggregates hot-path statistics with atomics.
type counters struct {
	executions  atomic.Uint64
	commits     atomic.Uint64
	rollbacks   atomic.Uint64
	forcedStops atomic.Uint64
	steals      atomic.Uint64
	busy        []atomic.Int64 // per-worker processing nanoseconds
}

func newCounters(workers int) *counters {
	return &counters{busy: make([]atomic.Int64, workers)}
}

func (c *counters) into(stats *Stats) {
	stats.Executions += c.executions.Load()
	stats.Commits += c.commits.Load()
	stats.Rollbacks += c.rollbacks.Load()
	stats.ForcedStops += c.forcedStops.Load()
	stats.Steals += c.steals.Load()
	var sum, max int64
	active := 0
	for i := range c.busy {
		b := c.busy[i].Load()
		sum += b
		if b > 0 {
			active++
		}
		if b > max {
			max = b
		}
	}
	if active > 0 {
		stats.AvgWorkerBusy = time.Duration(sum / int64(active))
		stats.MaxWorkerBusy = time.Duration(max)
	}
}

// runQueued is the asynchronous / bounded-staleness scheduler: batches
// circulate through per-region lock-free queues until batch-wise
// convergence (step 4/5 of Figure 2). A worker whose region queue is
// drained steals batches from other regions' queues instead of idling
// (unless Config.DisableWorkStealing); stolen batches are pushed back to
// their home queue so data affinity is restored as soon as the home
// region's workers catch up.
func (e *Engine) runQueued(perRegion [][]*sched, stats *Stats) {
	regions := len(perRegion)
	queues := make([]*queue.Queue[*batch], regions)
	var remaining atomic.Int64
	for r := range queues {
		queues[r] = queue.New[*batch]()
		for lo := 0; lo < len(perRegion[r]); lo += e.cfg.BatchSize {
			hi := lo + e.cfg.BatchSize
			if hi > len(perRegion[r]) {
				hi = len(perRegion[r])
			}
			b := &batch{subs: perRegion[r][lo:hi], home: r, live: int64(hi - lo)}
			remaining.Add(b.live)
			queues[r].Push(b)
		}
	}

	cnt := newCounters(e.cfg.Workers)
	o := e.cfg.Observer
	stopSampler := e.startSampler(o, cnt, &remaining)

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := e.cfg.Topology.RegionOf(w)
			q := queues[region]
			steal := !e.cfg.DisableWorkStealing && regions > 1
			for remaining.Load() > 0 {
				b, ok := q.Pop()
				if !ok && steal {
					// Local queue drained: fall back to stealing a batch
					// from another region so a skewed regionOf does not
					// leave this core spinning until global completion.
					for off := 1; off < regions; off++ {
						if b, ok = queues[(region+off)%regions].Pop(); ok {
							cnt.steals.Add(1)
							if o != nil {
								o.Inc(w, obs.Steals)
							}
							break
						}
					}
				}
				if !ok {
					// Everything is drained or in flight on other workers;
					// yield instead of spinning hard.
					runtime.Gosched()
					continue
				}
				if o != nil {
					o.ObserveQueueDepth(queues[b.home].Len())
					o.ObserveLive(remaining.Load())
				}
				t0 := time.Now()
				committed := e.processBatch(w, b, cnt, &remaining)
				busy := int64(time.Since(t0))
				cnt.busy[w].Add(busy)
				if o != nil {
					o.AddBusy(w, busy)
				}
				if b.live > 0 {
					// Always recirculate through the batch's home queue:
					// a stolen batch returns to its own region as soon as
					// this pass ends, so stealing never migrates data
					// affinity permanently.
					queues[b.home].Push(b)
					if o != nil {
						o.Inc(w, obs.Recirculations)
					}
					if committed == 0 {
						// Every live sub-transaction rolled back (e.g.
						// SSP-throttled behind a straggler): back off
						// instead of spin-retrying at full speed.
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stopSampler()
	cnt.into(stats)
}

// startSampler launches the periodic convergence sampler when telemetry is
// enabled and returns the function that stops it and records the final
// sample. With a nil observer it does nothing.
func (e *Engine) startSampler(o *obs.Observer, cnt *counters, remaining *atomic.Int64) func() {
	if o == nil {
		return func() {}
	}
	record := func() {
		o.RecordSample(remaining.Load(), cnt.commits.Load(), cnt.rollbacks.Load())
	}
	record() // t=0 point: everything live
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(sampleInterval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				record()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		record() // final point: run complete
	}
}

// processBatch runs one iteration of every live sub-transaction in b and
// returns the number of committed iterations.
func (e *Engine) processBatch(w int, b *batch, cnt *counters, remaining *atomic.Int64) int {
	o := e.cfg.Observer
	committed := 0
	for _, s := range b.subs {
		if s.converged {
			continue
		}
		if e.cfg.IterationHook != nil {
			e.cfg.IterationHook(w)
		}
		s.ctx.SetWorker(w)
		if !s.begun {
			s.sub.Begin(s.ctx)
			s.begun = true
		}
		s.sub.Execute(s.ctx)
		cnt.executions.Add(1)
		if o != nil {
			o.Inc(w, obs.Executions)
		}
		action := s.sub.Validate(s.ctx)
		converged, rolledBack := s.ctx.Finalize(action)
		if rolledBack {
			cnt.rollbacks.Add(1)
		} else {
			cnt.commits.Add(1)
			if o != nil {
				o.Inc(w, obs.Commits)
			}
			committed++
		}
		if !converged {
			// Two force-stop rules: the paper's fixed-iteration cap on
			// *committed* iterations, and the attempt backstop that also
			// counts rollbacks — without it a perpetually rolled-back
			// sub-transaction never retires and Run livelocks.
			if e.cfg.MaxIterations > 0 && s.ctx.Iteration() >= e.cfg.MaxIterations {
				converged = true
				cnt.forcedStops.Add(1)
				if o != nil {
					o.Inc(w, obs.ForcedStopIters)
				}
			} else if e.cfg.MaxAttempts > 0 && s.ctx.Attempts() >= e.cfg.MaxAttempts {
				converged = true
				cnt.forcedStops.Add(1)
				if o != nil {
					o.Inc(w, obs.ForcedStopAttempts)
				}
			}
		}
		if converged {
			s.converged = true
			b.live--
			remaining.Add(-1)
		}
	}
	return committed
}

// runSync is the synchronous scheduler: lockstep rounds separated by
// barriers, writes installed only after every execution of the round
// finished, so reads always observe exactly the previous round's snapshots
// with zero version checking (Section 5.1).
func (e *Engine) runSync(perRegion [][]*sched, stats *Stats) {
	// Static work assignment: worker w owns every sched at position k of
	// its region where k ≡ (w's rank within the region).
	shards := make([][]*sched, e.cfg.Workers)
	rankInRegion := make([]int, e.cfg.Workers)
	regionRank := make([]int, e.cfg.Topology.Regions)
	for w := 0; w < e.cfg.Workers; w++ {
		r := e.cfg.Topology.RegionOf(w)
		rankInRegion[w] = regionRank[r]
		regionRank[r]++
	}
	for w := 0; w < e.cfg.Workers; w++ {
		r := e.cfg.Topology.RegionOf(w)
		workersHere := e.cfg.Topology.WorkersIn(r)
		for k := rankInRegion[w]; k < len(perRegion[r]); k += workersHere {
			shards[w] = append(shards[w], perRegion[r][k])
		}
	}

	remaining := int64(0)
	for _, rg := range perRegion {
		remaining += int64(len(rg))
	}
	cnt := newCounters(e.cfg.Workers)
	o := e.cfg.Observer
	var left atomic.Int64
	left.Store(remaining)
	if o != nil {
		o.RecordSample(left.Load(), 0, 0)
	}

	for round := uint64(1); left.Load() > 0; round++ {
		if e.cfg.MaxIterations > 0 && round > e.cfg.MaxIterations {
			// Retire whatever is still live.
			for _, sh := range shards {
				for _, s := range sh {
					if !s.converged {
						s.converged = true
						cnt.forcedStops.Add(1)
						if o != nil {
							o.Inc(0, obs.ForcedStopIters)
						}
						left.Add(-1)
					}
				}
			}
			break
		}
		stats.Rounds++
		// Phase A: execute everything, writes stay buffered.
		e.parallel(shards, cnt, func(w int, s *sched) {
			if e.cfg.IterationHook != nil {
				e.cfg.IterationHook(w)
			}
			s.ctx.SetWorker(w)
			if !s.begun {
				s.sub.Begin(s.ctx)
				s.begun = true
			}
			s.sub.Execute(s.ctx)
			cnt.executions.Add(1)
			if o != nil {
				o.Inc(w, obs.Executions)
			}
			s.action = s.sub.Validate(s.ctx)
		})
		// Barrier, then phase B: install and settle verdicts.
		var doneVotes atomic.Int64
		liveThisRound := left.Load()
		e.parallel(shards, cnt, func(w int, s *sched) {
			action := s.action
			if e.cfg.ConvergeTogether && action == itx.Done {
				// Vote, but keep iterating until the whole round agrees.
				doneVotes.Add(1)
				action = itx.Commit
			}
			converged, rolledBack := s.ctx.Finalize(action)
			if rolledBack {
				cnt.rollbacks.Add(1)
			} else {
				cnt.commits.Add(1)
				if o != nil {
					o.Inc(w, obs.Commits)
				}
			}
			if converged {
				s.converged = true
				left.Add(-1)
			}
		})
		if e.cfg.ConvergeTogether && doneVotes.Load() == liveThisRound {
			// Unanimous: the global fixpoint is reached; retire everyone.
			for _, sh := range shards {
				for _, s := range sh {
					if !s.converged {
						s.converged = true
						left.Add(-1)
					}
				}
			}
		}
		if o != nil {
			// One convergence-series point per barrier round.
			o.ObserveLive(left.Load())
			o.RecordSample(left.Load(), cnt.commits.Load(), cnt.rollbacks.Load())
		}
	}
	cnt.into(stats)
}

// parallel runs fn over every live sched of every shard, one goroutine per
// worker, and waits for all of them — the barrier between phases. Each
// worker's processing time is charged to its busy counter.
func (e *Engine) parallel(shards [][]*sched, cnt *counters, fn func(w int, s *sched)) {
	var wg sync.WaitGroup
	for w := range shards {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for _, s := range shards[w] {
				if s.converged {
					continue
				}
				fn(w, s)
			}
			busy := int64(time.Since(t0))
			cnt.busy[w].Add(busy)
			if e.cfg.Observer != nil {
				e.cfg.Observer.AddBusy(w, busy)
			}
		}(w)
	}
	wg.Wait()
}

// Snapshot exports the telemetry collected by the configured observer
// (internal/obs); ok is false when Config.Observer is nil. It may be
// called while Run is in flight (a progress report) or afterwards (the
// full account of the last run).
func (e *Engine) Snapshot() (snap obs.Snapshot, ok bool) {
	if e.cfg.Observer == nil {
		return obs.Snapshot{}, false
	}
	return e.cfg.Observer.Snapshot(), true
}

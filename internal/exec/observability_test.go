package exec

import (
	"bytes"
	"encoding/json"
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// TestQueuedRunPopulatesLatenciesAndTrace: an asynchronous run with an
// observer and a tracer attached must fill the attempt / batch-pass /
// queue-wait histograms consistently with its Stats, and the trace ring must
// hold the job's span plus batch and queue-wait spans.
func TestQueuedRunPopulatesLatenciesAndTrace(t *testing.T) {
	const n, target = 120, 6
	subs, _ := newCounterSubs(n, target)
	o := obs.New()
	tr := trace.New(4, 4096)
	e := New(Config{Workers: 4, BatchSize: 8, Observer: o, Tracer: tr},
		isolation.Options{Level: isolation.Asynchronous})
	stats := e.Run(subs, nil)

	lat := o.Snapshot().Latencies
	if lat.Attempt.Count != stats.Executions {
		t.Fatalf("attempt samples = %d, want one per execution (%d)", lat.Attempt.Count, stats.Executions)
	}
	if lat.Attempt.P50Nanos <= 0 || lat.Attempt.P99Nanos < lat.Attempt.P50Nanos {
		t.Fatalf("attempt quantiles implausible: p50=%d p99=%d", lat.Attempt.P50Nanos, lat.Attempt.P99Nanos)
	}
	if lat.BatchPass.Count == 0 {
		t.Fatal("no batch-pass samples recorded")
	}
	if lat.QueueWait.Count == 0 {
		t.Fatal("no queue-wait samples recorded")
	}
	if lat.BarrierWait.Count != 0 {
		t.Fatalf("queued run recorded %d barrier-wait samples", lat.BarrierWait.Count)
	}

	kinds := map[trace.Kind]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	if kinds[trace.KindJob] != 1 {
		t.Fatalf("job spans = %d, want 1", kinds[trace.KindJob])
	}
	if kinds[trace.KindBatch] == 0 || kinds[trace.KindQueueWait] == 0 {
		t.Fatalf("missing batch/queue-wait spans: %v", kinds)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("run trace is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("run trace is empty")
	}
}

// TestSyncRunRecordsBarrierSkew: a synchronous run must record the barrier
// arrival-skew histogram and emit barrier spans.
func TestSyncRunRecordsBarrierSkew(t *testing.T) {
	const n, target = 48, 5
	subs, _ := newCounterSubs(n, target)
	o := obs.New()
	tr := trace.New(3, 4096)
	e := New(Config{Workers: 3, BatchSize: 4, Observer: o, Tracer: tr},
		isolation.Options{Level: isolation.Synchronous})
	stats := e.Run(subs, nil)
	if stats.Rounds == 0 {
		t.Fatal("no rounds")
	}
	lat := o.Snapshot().Latencies
	if lat.Attempt.Count != stats.Executions {
		t.Fatalf("attempt samples = %d, want %d", lat.Attempt.Count, stats.Executions)
	}
	// One skew sample per completed phase: 2 per round (execute + install).
	if lat.BarrierWait.Count < stats.Rounds {
		t.Fatalf("barrier-wait samples = %d, want >= rounds (%d)", lat.BarrierWait.Count, stats.Rounds)
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindBarrier {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no barrier spans in trace")
	}
}

// TestUninstrumentedRunStampsNothing: with neither observer nor tracer, the
// run must leave every queue-wait stamp at zero (the disabled path takes no
// clock readings for instrumentation) and still complete exactly.
func TestUninstrumentedRunStampsNothing(t *testing.T) {
	subs, _ := newCounterSubs(20, 3)
	p, err := NewPool(Config{Workers: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	j, err := p.Submit(subs, isolation.Options{Level: isolation.Asynchronous}, JobConfig{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Commits != 20*3 {
		t.Fatalf("Commits = %d", stats.Commits)
	}
	for _, b := range j.batches {
		if b.enq != 0 {
			t.Fatal("uninstrumented job stamped a batch's enqueue time")
		}
	}
}

// TestJobIntrospectionAccessors: the accessors the debug server's job table
// relies on.
func TestJobIntrospectionAccessors(t *testing.T) {
	subs, _ := newCounterSubs(12, 2)
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	j, err := p.Submit(subs, isolation.Options{Level: isolation.Asynchronous}, JobConfig{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if j.Total() != 12 {
		t.Fatalf("Total = %d", j.Total())
	}
	if j.Started().IsZero() {
		t.Fatal("Started is zero")
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if !j.Finished() || j.Live() != 0 || j.Err() != nil {
		t.Fatalf("finished job: Finished=%v Live=%d Err=%v", j.Finished(), j.Live(), j.Err())
	}
}

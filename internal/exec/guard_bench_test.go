package exec

import (
	"testing"
	"time"
)

// benchSink defeats dead-code elimination across the benchmark variants.
var benchSink uint64

//go:noinline
func benchPass(n int) uint64 {
	var s uint64
	for i := 0; i < n; i++ {
		s += uint64(i) ^ s<<1
	}
	return s
}

// guardedPass is the panic-containment wrapper shape the pool uses: one
// defer/recover around a whole batch pass, never per sub-transaction.
//
//go:noinline
func guardedPass(n int) (s uint64) {
	defer func() {
		if r := recover(); r != nil {
			benchSink++
		}
	}()
	return benchPass(n)
}

// BenchmarkGuardOverhead quantifies the recover() wrapper's cost: the
// per-invocation price of the defer/recover frame, and the amortized price
// at the pool's real granularity (one guard per batch pass). EXPERIMENTS.md
// records the measured numbers; the acceptance target is <2% at batch
// granularity.
func BenchmarkGuardOverhead(b *testing.B) {
	for _, n := range []int{1, 256} {
		name := "pass1"
		if n > 1 {
			name = "pass256"
		}
		b.Run("direct/"+name, func(b *testing.B) {
			var s uint64
			for i := 0; i < b.N; i++ {
				s += benchPass(n)
			}
			benchSink += s
		})
		b.Run("guarded/"+name, func(b *testing.B) {
			var s uint64
			for i := 0; i < b.N; i++ {
				s += guardedPass(n)
			}
			benchSink += s
		})
	}
}

// BenchmarkSupervision measures a full engine job with and without the
// watchdog armed, so the heartbeat counter + sampler goroutine cost is
// visible end-to-end rather than inferred from the microbenchmark.
func BenchmarkSupervision(b *testing.B) {
	run := func(b *testing.B, cfg JobConfig) {
		p, err := NewPool(Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			subs, _ := newCounterSubs(256, 10)
			j, err := p.Submit(subs, async(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, JobConfig{BatchSize: 64})
	})
	b.Run("watchdog", func(b *testing.B) {
		run(b, JobConfig{BatchSize: 64, Deadline: time.Minute, StallTimeout: 10 * time.Second})
	})
}

package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be nil-receiver safe.
	tr.Span(3, KindBatch, 1, 0, tr.Now(), 10)
	tr.Instant(0, KindSteal, 1, 0)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer's trace is not valid JSON: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Span(0, KindBatch, 1, 0, 0, 1)
		tr.Instant(0, KindSteal, 1, 0)
	}); allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

func TestEnabledRecordDoesNotAllocate(t *testing.T) {
	tr := New(2, 64)
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Span(1, KindBatch, 7, 3, tr.Now(), 100)
	}); allocs != 0 {
		t.Fatalf("enabled Span allocates: %v allocs/op", allocs)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	const capacity = 8
	tr := New(1, capacity)
	for i := 0; i < 3*capacity; i++ {
		tr.Span(0, KindBatch, 1, int64(i), int64(i), 1)
	}
	events := tr.Events()
	if len(events) != capacity {
		t.Fatalf("retained %d events, want %d", len(events), capacity)
	}
	// Overwrite-oldest: exactly the last `capacity` args survive, in order.
	for i, e := range events {
		want := int64(3*capacity - capacity + i)
		if e.Arg != want {
			t.Fatalf("event %d: arg = %d, want %d", i, e.Arg, want)
		}
	}
	if tr.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tr.Len(), capacity)
	}
}

// TestRingWrapConcurrent hammers small rings from several writer
// goroutines while a reader snapshots continuously — the wrap-around race
// test. Run under -race; the assertions check that snapshots only ever
// contain fully written events.
func TestRingWrapConcurrent(t *testing.T) {
	const (
		writers   = 4
		perWriter = 2000
		capacity  = 16
	)
	tr := New(writers, capacity)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range tr.Events() {
				// Writers encode worker w into both Job and Arg as w+1; a
				// torn event would mix two writers' fields.
				if e.Job != uint64(e.Arg) {
					t.Errorf("torn event: job %d vs arg %d", e.Job, e.Arg)
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				tr.Span(w, KindBatch, uint64(w+1), int64(w+1), int64(i), 1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := tr.Len(); got != writers*capacity {
		t.Fatalf("retained %d events, want %d (full rings)", got, writers*capacity)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := New(2, 32)
	now := tr.Now()
	tr.Span(0, KindJob, 1, 0, now, 5000)
	tr.Span(0, KindBatch, 1, 2, now, 1000)
	tr.Span(1, KindQueueWait, 1, 0, now+100, 400)
	tr.Span(1, KindBarrier, 1, 3, now+200, 300)
	tr.Instant(1, KindSteal, 1, 0)
	tr.Instant(0, KindFault, 1, 2)
	tr.Instant(0, KindRetry, 1, 1)
	tr.Instant(0, KindAbort, 1, AbortDeadline)
	tr.Instant(0, KindCommit, 1, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  uint64  `json:"pid"`
			Tid  int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) < 9 {
		t.Fatalf("trace has %d events, want >= 9 (incl. metadata)", len(doc.TraceEvents))
	}
	phs := map[string]int{}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		phs[e.Ph]++
		names[e.Name]++
	}
	if phs["X"] != 4 {
		t.Fatalf("complete events = %d, want 4 (%v)", phs["X"], phs)
	}
	if phs["i"] != 5 {
		t.Fatalf("instant events = %d, want 5 (%v)", phs["i"], phs)
	}
	if phs["M"] == 0 {
		t.Fatal("no metadata (process/thread name) events")
	}
	for _, want := range []string{"job", "batch", "queue-wait", "barrier", "steal", "fault", "retry", "abort", "commit"} {
		if names[want] == 0 {
			t.Fatalf("missing %q event in trace (%v)", want, names)
		}
	}
}

func TestEventsSortedByStart(t *testing.T) {
	tr := New(3, 16)
	tr.Span(2, KindBatch, 1, 0, 300, 1)
	tr.Span(0, KindBatch, 1, 0, 100, 1)
	tr.Span(1, KindBatch, 1, 0, 200, 1)
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events out of order: %v", ev)
		}
	}
}

func TestWorkerIndexFolds(t *testing.T) {
	tr := New(2, 8)
	tr.Span(99, KindBatch, 1, 0, 0, 1) // out of range folds into shard 0
	tr.Span(-1, KindBatch, 1, 0, 0, 1)
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

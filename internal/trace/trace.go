// Package trace is the engine's low-overhead span tracer: a fixed-size,
// per-worker-sharded ring buffer of timing events recording what the
// kernel's runtime actually did — uber-transaction lifecycles, batch
// passes, sync-barrier waits, queue residence, steals, retries, aborts,
// and chaos faults. Where internal/obs answers "how much" (counters,
// histograms), trace answers "when, in what order, on which worker".
//
// Design constraints, mirroring internal/obs:
//
//   - Disabled must be free. A nil *Tracer is the off state; every method
//     is nil-receiver safe, so call sites need no guard at all and the
//     compiled hot path is a single pointer test.
//   - Enabled must be cheap and bounded. Each worker records into its own
//     fixed-size ring (one short critical section per event, contended
//     only by a concurrent snapshot); when the ring is full the oldest
//     events are overwritten, so arbitrarily long runs keep the most
//     recent window instead of growing without bound.
//   - Exportable. Events render as Chrome trace_event JSON
//     (WriteChromeTrace), so a run's trace opens directly in
//     about:tracing or Perfetto: one "process" row group per job, one
//     "thread" row per worker.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what an event describes.
type Kind uint8

const (
	// KindJob spans one uber-transaction from submission to finish.
	KindJob Kind = iota
	// KindBatch spans one batch scheduling pass on one worker.
	KindBatch
	// KindBarrier spans a synchronous round's barrier wait: from the first
	// batch's arrival to the last (the round's arrival skew).
	KindBarrier
	// KindQueueWait spans a batch's residence in its region queue, from
	// push to pop.
	KindQueueWait
	// KindSteal marks a batch popped from a foreign region's queue.
	KindSteal
	// KindRetry marks a whole-job resubmission by the facade's abort-retry
	// loop; Arg is the attempt number just finished.
	KindRetry
	// KindAbort marks a job failure or cancellation; Arg is a reason code
	// (the caller's choice — the facade uses AbortPanic and friends).
	KindAbort
	// KindFault marks an injected chaos fault the run absorbed; Arg is the
	// chaos.Fault code.
	KindFault
	// KindCommit marks an uber-transaction's atomic publish.
	KindCommit
	// KindGC marks one version-GC reclaimer pass; Arg is the number of
	// versions pruned.
	KindGC
	// KindPlan spans one relational plan execution (internal/plan), from
	// Execute to cursor close; Arg is the number of result rows emitted.
	KindPlan
	// KindPlanOp spans one operator's Open→Close lifetime within a plan
	// execution; Arg is the operator's rows-out count.
	KindPlanOp
	// KindWAL marks one group-commit batch written to the write-ahead log;
	// Arg is the number of records in the batch.
	KindWAL
	// KindCheckpoint marks one completed fuzzy checkpoint pass; Arg is the
	// number of table sections written.
	KindCheckpoint
	// KindUberBegin spans a distributed uber-transaction's begin+attach
	// phase across every participating shard; Job is the coordinator's
	// uber-transaction correlation id.
	KindUberBegin
	// KindPrepare spans one shard's 2PC prepare; Arg is the shard index.
	KindPrepare
	// KindCommitWindow spans the distributed commit window of one
	// uber-transaction: first prepare through last per-shard commit. Arg is
	// the commit timestamp.
	KindCommitWindow
	// KindRendezvous spans a cross-shard rendezvous wait (global barrier
	// arrival or convergence vote); Arg is the shard index.
	KindRendezvous
	// KindFsync spans one WAL fsync.
	KindFsync
	// KindReplay spans one recovery replay step (one committed
	// uber-transaction re-applied from the log); Arg is the record's LSN.
	KindReplay
	// KindCkptSection spans one checkpoint table-section write; Arg is 1
	// when the section was reused from the unchanged-section cache.
	KindCkptSection

	numKinds
)

// Abort reason codes carried in a KindAbort event's Arg.
const (
	AbortCancelled int64 = iota
	AbortPanic
	AbortStall
	AbortDeadline
	AbortError
)

var kindNames = [numKinds]string{
	"job", "batch", "barrier", "queue-wait", "steal",
	"retry", "abort", "fault", "commit", "gc",
	"plan", "plan-op", "wal", "checkpoint",
	"uber-begin", "prepare", "commit-window", "rendezvous",
	"fsync", "replay", "ckpt-section",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// Event is one recorded span or instant. Start is nanoseconds since the
// tracer's epoch; Dur is 0 for instant events. Seq orders events recorded
// at the same nanosecond (coarse clocks) and across shards.
type Event struct {
	Start  int64
	Dur    int64
	Seq    uint64
	Job    uint64
	Arg    int64
	Worker int32
	Kind   Kind
}

// shard is one worker's ring. The mutex serializes the owning worker's
// appends with concurrent snapshots (Events/WriteChromeTrace); workers
// never touch each other's shards, so the lock is uncontended on the hot
// path except while a snapshot is being taken.
type shard struct {
	mu   sync.Mutex
	pos  uint64 // next slot; pos>=len(ring) means the ring has wrapped
	ring []Event
	_    [64]byte // keep adjacent shards' hot words off one cache line
}

// DefaultCapacity is the per-worker ring size used when New is given a
// non-positive capacity: 8192 events ≈ 448 KiB/worker, a few seconds of
// batch-granularity history on a busy worker.
const DefaultCapacity = 8192

// Tracer records events into per-worker rings. A nil *Tracer is the
// disabled state: every method no-ops. Construct with New.
type Tracer struct {
	epoch  time.Time
	shards []shard
	seq    atomic.Uint64
}

// New returns a tracer with one ring per worker (at least one) of the
// given per-worker capacity (DefaultCapacity when <= 0). Worker indexes
// out of range fold into the existing shards, so a tracer sized for a
// pool is safe to share with job-level callers that pass worker 0.
func New(workers, capacity int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{epoch: time.Now(), shards: make([]shard, workers)}
	for i := range t.shards {
		t.shards[i].ring = make([]Event, capacity)
	}
	return t
}

// Enabled reports whether the tracer records anything (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch returns the wall-clock instant this tracer's Start offsets are
// relative to. Merging rings from tracers constructed at different times
// (one per shard) requires re-basing every event onto one shared epoch;
// WriteChromeTraceMulti does this with the deltas between source epochs.
// The zero time on a nil tracer.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Now returns the current time in nanoseconds since the tracer's epoch —
// the Start argument for Span. Monotonic (time.Since). Returns 0 on a nil
// tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

func (t *Tracer) shard(worker int) *shard {
	if worker < 0 || worker >= len(t.shards) {
		worker = 0
	}
	return &t.shards[worker]
}

// Span records a duration event on worker's ring: it began at start
// (nanoseconds since epoch, from Now) and lasted dur nanoseconds.
func (t *Tracer) Span(worker int, k Kind, job uint64, arg int64, start, dur int64) {
	if t == nil {
		return
	}
	t.record(worker, Event{
		Kind: k, Worker: int32(worker), Job: job, Arg: arg,
		Start: start, Dur: dur,
	})
}

// Instant records a zero-duration event on worker's ring at the current
// time.
func (t *Tracer) Instant(worker int, k Kind, job uint64, arg int64) {
	if t == nil {
		return
	}
	t.record(worker, Event{
		Kind: k, Worker: int32(worker), Job: job, Arg: arg,
		Start: t.Now(),
	})
}

func (t *Tracer) record(worker int, e Event) {
	e.Seq = t.seq.Add(1)
	sh := t.shard(worker)
	sh.mu.Lock()
	sh.ring[sh.pos%uint64(len(sh.ring))] = e
	sh.pos++
	sh.mu.Unlock()
}

// Len returns the number of events currently retained across all shards.
// 0 on a nil tracer.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		p := sh.pos
		if p > uint64(len(sh.ring)) {
			p = uint64(len(sh.ring))
		}
		n += int(p)
		sh.mu.Unlock()
	}
	return n
}

// Events snapshots the retained events of every shard, ordered by
// (Start, Seq). Safe to call while workers keep recording; each shard is
// copied under its lock, so no torn events are ever observed. Returns nil
// on a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := sh.pos
		if n > uint64(len(sh.ring)) {
			n = uint64(len(sh.ring))
		}
		out = append(out, sh.ring[:n]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// chromeEvent is one trace_event entry. Ts/Dur are microseconds (the
// format's unit); Pid groups rows by job, Tid by worker.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Source is one named ring feeding a merged Chrome-trace export: a shard's
// kernel tracer, a coordinator tracer, a single kernel. The Name becomes
// the process row's name in the rendered trace.
type Source struct {
	Name   string
	Tracer *Tracer
}

// WriteChromeTrace renders this tracer's retained events as Chrome
// trace_event JSON — the single-source form of WriteChromeTraceMulti, so
// the one-kernel path and the cross-shard merge share one exporter. A nil
// tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceMulti(w, []Source{{Name: "kernel", Tracer: t}})
}

// WriteChromeTraceMulti merges the retained events of every source into
// one Chrome trace_event JSON document (the object form:
// {"traceEvents": [...]}), loadable directly in about:tracing and
// Perfetto. Each source renders as one named process (pid = source index)
// with one thread row per worker; spans become complete ("X") events and
// instants thread-scoped instant ("i") events. Every event carries its
// causal correlation id (the coordinator-assigned uber-transaction or
// query id) in args.id, so spans of the same uber-transaction share an id
// across shard processes. Sources constructed at different times are
// re-based onto the earliest source epoch, so cross-shard timestamps are
// directly comparable. Nil tracers contribute nothing.
func WriteChromeTraceMulti(w io.Writer, sources []Source) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder writes a trailing newline; acceptable inside the array.
		return enc.Encode(ce)
	}
	// Common epoch: the earliest live source's. Events from later-built
	// tracers shift forward by the epoch delta.
	var base time.Time
	for _, s := range sources {
		if s.Tracer == nil {
			continue
		}
		if base.IsZero() || s.Tracer.epoch.Before(base) {
			base = s.Tracer.epoch
		}
	}
	for pid, s := range sources {
		if s.Tracer == nil {
			continue
		}
		events := s.Tracer.Events()
		if len(events) == 0 {
			continue
		}
		shift := int64(s.Tracer.epoch.Sub(base))
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("source %d", pid)
		}
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: uint64(pid),
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
		seenThread := make(map[int32]bool)
		for _, e := range events {
			if !seenThread[e.Worker] {
				seenThread[e.Worker] = true
				if err := emit(chromeEvent{
					Name: "thread_name", Ph: "M", Pid: uint64(pid), Tid: e.Worker,
					Args: map[string]any{"name": fmt.Sprintf("worker %d", e.Worker)},
				}); err != nil {
					return err
				}
			}
			ce := chromeEvent{
				Name: e.Kind.String(),
				Cat:  "db4ml",
				Ts:   float64(e.Start+shift) / 1e3,
				Pid:  uint64(pid),
				Tid:  e.Worker,
			}
			if e.Dur > 0 || e.Kind == KindJob || e.Kind == KindBatch ||
				e.Kind == KindBarrier || e.Kind == KindQueueWait {
				ce.Ph = "X"
				d := float64(e.Dur) / 1e3
				ce.Dur = &d
			} else {
				ce.Ph = "i"
				ce.S = "t"
			}
			ce.Args = map[string]any{"id": e.Job}
			if e.Arg != 0 || e.Kind == KindAbort || e.Kind == KindFault || e.Kind == KindRetry {
				ce.Args["arg"] = e.Arg
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

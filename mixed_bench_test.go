package db4ml

// BenchmarkMixedWorkload quantifies the paper's coexistence claim (Section
// 2.1): ML-tables remain usable by classical transactional workloads while
// an ML algorithm runs. It measures OLTP read-modify-write commit latency
// on an Account table, alone and with a continuously running ML
// uber-transaction over a separate Signal table in the same database.

import (
	"sync"
	"sync/atomic"
	"testing"

	"db4ml/internal/storage"
)

// spinningSub keeps updating its row until told to stop.
type spinningSub struct {
	tbl  *Table
	row  RowID
	rec  *storage.IterativeRecord
	stop *atomic.Bool
	n    uint64
}

func (s *spinningSub) Begin(ctx *Ctx) { s.rec = s.tbl.IterRecord(s.row) }
func (s *spinningSub) Execute(ctx *Ctx) {
	s.n++
	ctx.WriteCol(s.rec, 1, s.n)
}
func (s *spinningSub) Validate(ctx *Ctx) Action {
	if s.stop.Load() {
		return Done
	}
	return Commit
}

func loadBenchTable(b *testing.B, db *DB, name string, rows int) *Table {
	b.Helper()
	tbl, err := db.CreateTable(name,
		Column{Name: "ID", Type: Int64},
		Column{Name: "V", Type: Float64})
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([]Payload, rows)
	for i := range payloads {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		payloads[i] = p
	}
	if err := db.BulkLoad(tbl, payloads); err != nil {
		b.Fatal(err)
	}
	return tbl
}

func oltpLoop(b *testing.B, db *DB, tbl *Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		row := RowID(i % tbl.NumRows())
		p, ok := tx.Read(tbl, row)
		if !ok {
			b.Fatal("row unreadable")
		}
		p.SetFloat64(1, p.Float64(1)+1)
		if err := tx.Write(tbl, row, p); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixedWorkload(b *testing.B) {
	b.Run("oltp-alone", func(b *testing.B) {
		db := Open()
		accounts := loadBenchTable(b, db, "Account", 1024)
		b.ResetTimer()
		oltpLoop(b, db, accounts)
	})
	b.Run("oltp-with-running-ml", func(b *testing.B) {
		db := Open()
		accounts := loadBenchTable(b, db, "Account", 1024)
		signals := loadBenchTable(b, db, "Signal", 256)
		var stop atomic.Bool
		subs := make([]IterativeTransaction, 256)
		for i := range subs {
			subs[i] = &spinningSub{tbl: signals, row: RowID(i), stop: &stop}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.RunML(MLRun{
				Isolation: MLOptions{Level: Asynchronous},
				Workers:   2,
				Attach:    []Attachment{{Table: signals}},
				Subs:      subs,
			}); err != nil {
				b.Error(err)
			}
		}()
		b.ResetTimer()
		oltpLoop(b, db, accounts)
		b.StopTimer()
		stop.Store(true)
		wg.Wait()
	})
}

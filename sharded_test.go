package db4ml

import (
	"context"
	"math"
	"runtime"
	"testing"

	"db4ml/internal/graph"
	"db4ml/internal/metrics"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/svm"
	"db4ml/internal/txn"
)

// openShardedCounters mirrors openWithCounters on a sharded database.
func openShardedCounters(t *testing.T, shards, n int, opts ...Option) (*ShardedDB, *Table) {
	t.Helper()
	db := OpenSharded(append([]Option{WithShards(shards), WithShardScheme(ShardRoundRobin)}, opts...)...)
	tbl, err := db.CreateTable("Counter",
		Column{Name: "ID", Type: Int64},
		Column{Name: "Value", Type: Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 0)
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestShardedQuickstart drives the README's sharded session end to end:
// open N kernels, create and load a sharded table (rows spread round-robin
// across shards), run an ML job as ONE distributed uber-transaction whose
// sub-transactions land on the shards owning their rows, and read the
// atomically published result through cross-shard snapshot reads.
func TestShardedQuickstart(t *testing.T) {
	const n, target = 24, 5.0
	db, tbl := openShardedCounters(t, 3, n)
	defer db.Close()

	st := db.ShardedTable("Counter")
	if st == nil || db.Table("Counter") != tbl || st.View() != tbl {
		t.Fatal("sharded table registry wrong")
	}
	spread := map[int]int{}
	for i := 0; i < n; i++ {
		spread[st.ShardOf(RowID(i))]++
	}
	if len(spread) != 3 {
		t.Fatalf("rows landed on %d of 3 shards", len(spread))
	}

	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: target}
	}
	obs := NewObserver()
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Label:     "quickstart",
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
		Observer:  obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got stats for %d shards, want 3", len(stats))
	}
	var commits uint64
	for s, ss := range stats {
		if ss.Commits == 0 {
			t.Fatalf("shard %d ran no iterations", s)
		}
		commits += ss.Commits
	}
	if commits < n*uint64(target) {
		t.Fatalf("total commits %d < %d", commits, n*int(target))
	}
	ts := h.CommitTS()
	if ts == 0 {
		t.Fatal("committed run reported ts 0")
	}
	if snaps := h.ShardSnapshots(); len(snaps) != 3 {
		t.Fatalf("ShardSnapshots returned %d entries", len(snaps))
	} else if len(h.ShardObservers()) != 3 || h.ShardObservers()[0] != obs {
		t.Fatal("shard 0's observer is not the caller's")
	}

	// The result is visible on every shard through per-shard pinned
	// snapshots, and the cross-shard stable bound has advanced past it.
	if db.Stable() < ts {
		t.Fatalf("Stable %d < commit ts %d", db.Stable(), ts)
	}
	tx := db.Begin()
	defer tx.Close()
	for i := 0; i < n; i++ {
		p, ok := tx.Read(tbl, RowID(i))
		if !ok || p.Float64(1) != target {
			t.Fatalf("row %d = (%v, %v), want %v", i, p, ok, target)
		}
	}
}

// TestShardedRunMLDegenerateErrors pins the facade's error surface: no
// attachments, foreign tables, and out-of-range placement all fail at
// submission with a released admission slot (the follow-up run must not
// be blocked).
func TestShardedRunMLDegenerateErrors(t *testing.T) {
	db, tbl := openShardedCounters(t, 2, 4, WithMaxInflight(1))
	defer db.Close()

	if _, err := db.RunML(MLRun{Isolation: MLOptions{Level: Asynchronous}}); err == nil {
		t.Fatal("run without attachments accepted")
	}
	foreign, _ := Open().CreateTable("X", Column{Name: "a", Type: Int64})
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: foreign}},
		Subs:      []IterativeTransaction{&incSub{tbl: foreign, row: 0, target: 1}},
	}); err == nil {
		t.Fatal("foreign table accepted")
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      []IterativeTransaction{&incSub{tbl: tbl, row: 0, target: 1}},
		ShardOf:   func(int) int { return 99 },
	}); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
	// The gate slot was released by each failure: a well-formed run under
	// WithMaxInflight(1) still gets in.
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      []IterativeTransaction{&incSub{tbl: tbl, row: 0, target: 1}},
	}); err != nil {
		t.Fatalf("well-formed run rejected after failed submissions: %v", err)
	}
}

// loadShardedGraph loads g into sharded Node and Edge tables the way
// pagerank.LoadTables loads single-kernel ones (same row order, same
// initial ranks, same indexes — so BuildSubs sees an identical world
// through the global views).
func loadShardedGraph(t *testing.T, db *ShardedDB, g *graph.Graph) (node, edge *Table) {
	t.Helper()
	var err error
	node, err = db.CreateTable("Node",
		Column{Name: "NodeID", Type: Int64},
		Column{Name: "PR", Type: Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	edge, err = db.CreateTable("Edge",
		Column{Name: "NID_From", Type: Int64},
		Column{Name: "NID_To", Type: Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	nodeRows := make([]Payload, n)
	for v := 0; v < n; v++ {
		p := node.Schema().NewPayload()
		p.SetInt64(pagerank.ColNodeID, int64(v))
		p.SetFloat64(pagerank.ColPR, 1/float64(n))
		nodeRows[v] = p
	}
	var edgeRows []Payload
	for v := int32(0); int(v) < n; v++ {
		for _, to := range g.OutNeighbors(v) {
			p := edge.Schema().NewPayload()
			p.SetInt64(0, int64(v))
			p.SetInt64(1, int64(to))
			edgeRows = append(edgeRows, p)
		}
	}
	if err := db.BulkLoad(node, nodeRows); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkLoad(edge, edgeRows); err != nil {
		t.Fatal(err)
	}
	if err := node.CreateHashIndex("NodeID"); err != nil {
		t.Fatal(err)
	}
	if err := edge.CreateHashIndex("NID_To"); err != nil {
		t.Fatal(err)
	}
	return node, edge
}

// TestShardedPageRankMatchesSingleKernel is the distributed-correctness
// property test: the SAME PageRank sub-transactions (pagerank.BuildSubs,
// unchanged), placed across 1-, 2-, and 4-shard clusters by row ownership,
// must reproduce the single-kernel synchronous ranks BIT-EXACTLY. Under
// the synchronous level the coordinator ties every shard's barrier into
// one global rendezvous, so round r on any shard reads exactly round r-1
// everywhere — the same deterministic schedule as one kernel, even though
// under round-robin placement most neighbor reads cross shard boundaries.
func TestShardedPageRankMatchesSingleKernel(t *testing.T) {
	g := graph.ErdosRenyi(200, 1200, 11)
	cfg := pagerank.Config{Isolation: MLOptions{Level: Synchronous}}

	single := Open(WithWorkers(4))
	defer single.Close()
	nodeA, edgeA, err := pagerank.LoadTables(single.Manager(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pagerank.Run(single.Manager(), nodeA, edgeA, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		db := OpenSharded(WithShards(shards), WithShardScheme(ShardRoundRobin), WithWorkers(2))
		node, edge := loadShardedGraph(t, db, g)
		ncfg := cfg.Normalized()
		subs, _, err := pagerank.BuildSubs(node, edge, db.Stable(), ncfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := db.SubmitML(context.Background(), MLRun{
			Isolation:        ncfg.Isolation,
			ConvergeTogether: ncfg.Exec.ConvergeTogether,
			Label:            "pagerank",
			Attach:           []Attachment{{Table: node, Versions: ncfg.Versions}},
			Subs:             subs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		ts := h.CommitTS()
		for v := 0; v < g.NumNodes(); v++ {
			p, ok := node.Read(RowID(v), ts)
			if !ok {
				t.Fatalf("shards=%d: node %d unreadable at commit ts", shards, v)
			}
			if got := p.Float64(pagerank.ColPR); got != want.Ranks[v] {
				t.Fatalf("shards=%d node %d: distributed PR %.17g != single-kernel PR %.17g",
					shards, v, got, want.Ranks[v])
			}
		}
		db.Close()
	}
}

// TestShardedPageRankBoundedStaleness: under bounded staleness the
// distributed run is not bit-deterministic, but it must still converge to
// the true ranks within the same tolerance the single-kernel bounded test
// demands — sharding may not widen the staleness window (the cross-shard
// checker proves the bound holds; this proves the numerics land).
func TestShardedPageRankBoundedStaleness(t *testing.T) {
	g := graph.BarabasiAlbert(400, 6, 41)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 300)

	db := OpenSharded(WithShards(2), WithShardScheme(ShardRoundRobin), WithWorkers(2))
	defer db.Close()
	node, edge := loadShardedGraph(t, db, g)
	ncfg := pagerank.Config{
		Isolation: MLOptions{Level: BoundedStaleness, Staleness: 10},
		Epsilon:   1e-10,
	}.Normalized()
	subs, _, err := pagerank.BuildSubs(node, edge, db.Stable(), ncfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: ncfg.Isolation,
		BatchSize: 32,
		// On a single-CPU host the two pools' workers are co-scheduled in
		// long slices; yielding each iteration restores the fine-grained
		// cross-shard interleaving physical parallelism would provide (a
		// shard starved of CPU stops publishing, and per-sub convergence
		// against its frozen rows retires early — the limitation
		// exec/converge_test.go documents for per-node retirement).
		IterationHook: func(int) { runtime.Gosched() },
		Attach:        []Attachment{{Table: node, Versions: ncfg.Versions}},
		Subs:          subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, g.NumNodes())
	for v := range got {
		p, ok := node.Read(RowID(v), h.CommitTS())
		if !ok {
			t.Fatalf("node %d unreadable", v)
		}
		got[v] = p.Float64(pagerank.ColPR)
	}
	// The single-kernel bounded test's bar: small deviations from the exact
	// fixpoint are expected, the ranking must still agree almost everywhere.
	if acc := metrics.PairwiseAccuracy(want, got, 0, 1); acc < 0.98 {
		t.Fatalf("distributed bounded-staleness pairwise accuracy = %v", acc)
	}
}

// loadShardedSGD assembles an sgd.Tables over sharded parameter and sample
// tables, shuffled exactly like sgd.LoadTables so the sub bodies see an
// identical world.
func loadShardedSGD(t *testing.T, db *ShardedDB, train []svm.Sample, features int, seed int64) *sgd.Tables {
	t.Helper()
	shuffled := append([]svm.Sample(nil), train...)
	svm.Shuffle(shuffled, seed)
	params, err := db.CreateTable("GlobalParameter",
		Column{Name: "ParamID", Type: Int64},
		Column{Name: "Value", Type: Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := db.CreateTable("Sample",
		Column{Name: "RandID", Type: Int64},
		Column{Name: "SampleIdx", Type: Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	prows := make([]Payload, features)
	for i := range prows {
		p := params.Schema().NewPayload()
		p.SetInt64(sgd.ColParamID, int64(i))
		p.SetFloat64(sgd.ColValue, 0)
		prows[i] = p
	}
	srows := make([]Payload, len(shuffled))
	for i := range srows {
		p := samples.Schema().NewPayload()
		p.SetInt64(sgd.ColRandID, int64(i))
		p.SetInt64(sgd.ColSampleIdx, int64(i))
		srows[i] = p
	}
	if err := db.BulkLoad(params, prows); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkLoad(samples, srows); err != nil {
		t.Fatal(err)
	}
	if err := samples.CreateTreeIndex("RandID"); err != nil {
		t.Fatal(err)
	}
	return &sgd.Tables{Params: params, Samples: samples, Store: shuffled, Features: features}
}

// TestShardedSGDMatchesSingleKernel: a single-writer SGD run (one sub, so
// the schedule is deterministic) over a parameter table sharded 1/2/4 ways
// must produce the BIT-EXACT model the single-kernel run does. The sub
// runs on one shard but its model rows live on every shard, so every
// gradient step is a cross-shard iterative write through the view and the
// final model is published by the distributed two-phase commit.
func TestShardedSGDMatchesSingleKernel(t *testing.T) {
	const features = 20
	train, _ := svm.Generate(svm.GenSpec{
		Train: 400, Test: 1, Features: features, Density: 1, Noise: 0.05, Seed: 29,
	})
	cfg := sgd.Config{Epochs: 6, Lambda: 1e-5, Seed: 1}

	mgr := txn.NewManager()
	tablesA, err := sgd.LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Exec.Workers = 1
	want, err := sgd.Run(mgr, tablesA, scfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		db := OpenSharded(WithShards(shards), WithShardScheme(ShardRoundRobin), WithWorkers(2))
		tables := loadShardedSGD(t, db, train, features, 1)
		subs, err := sgd.BuildSubs(tables, db.Stable(), 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := db.SubmitML(context.Background(), MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			Label:     "sgd",
			Attach:    []Attachment{{Table: tables.Params}},
			Subs:      subs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := 0; i < features; i++ {
			p, ok := tables.Params.Read(RowID(i), h.CommitTS())
			if !ok {
				t.Fatalf("shards=%d: parameter %d unreadable", shards, i)
			}
			if got := p.Float64(sgd.ColValue); got != want.Model[i] {
				t.Fatalf("shards=%d param %d: distributed %v != single-kernel %v",
					shards, i, got, want.Model[i])
			}
		}
		db.Close()
	}
}

// TestShardedSGDLearnsHogwild: the multi-writer Hogwild configuration —
// four subs hammering a 2-way-sharded shared model asynchronously — is not
// deterministic, but the distributed run must still learn: the committed
// model has to classify held-out data as well as the single-kernel test
// demands.
func TestShardedSGDLearnsHogwild(t *testing.T) {
	const features = 30
	train, test := svm.Generate(svm.GenSpec{
		Train: 3000, Test: 600, Features: features, Density: 1, Noise: 0.05, Seed: 29,
	})
	db := OpenSharded(WithShards(2), WithShardScheme(ShardRoundRobin), WithWorkers(2))
	defer db.Close()
	tables := loadShardedSGD(t, db, train, features, 1)
	subs, err := sgd.BuildSubs(tables, db.Stable(), 4, sgd.Config{Epochs: 12, Lambda: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tables.Params}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	model := make(svm.VecModel, features)
	for i := range model {
		p, ok := tables.Params.Read(RowID(i), h.CommitTS())
		if !ok {
			t.Fatalf("parameter %d unreadable", i)
		}
		model[i] = p.Float64(sgd.ColValue)
	}
	if acc := svm.Accuracy(model, test); acc < 0.85 {
		t.Fatalf("distributed Hogwild accuracy = %v", acc)
	}
}

// TestShardedQueryEndToEnd runs the supervised distributed query path:
// a filter→aggregate→sort plan over a sharded table (filters scatter to
// per-shard fragments, the aggregate and sort gather), and the documented
// rejections surface as submission-time errors.
func TestShardedQueryEndToEnd(t *testing.T) {
	const n = 30
	db, tbl := openShardedCounters(t, 3, n)
	defer db.Close()

	// Set Value = ID via one distributed run so the aggregate has spread.
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: float64(i)}
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}

	rel, err := db.RunQuery(context.Background(), QueryRun{
		Plan: SortBy(
			Aggregate(
				Filter(Scan(tbl), FloatCmp("Value", Gt, 0)),
				Sum, "ID", "S", Col("Value")),
			"ID", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rows 1..n-1 pass the filter (incSub leaves row 0's value at 0 — its
	// target is 0 so the first increment still runs; accept either) and
	// each groups alone: ID ascending, S = float64(ID).
	if len(rel.Rows) < n-1 {
		t.Fatalf("aggregate produced %d groups, want >= %d", len(rel.Rows), n-1)
	}
	for _, r := range rel.Rows {
		id := r.Int64(0)
		if s := math.Float64frombits(r[1]); id > 0 && s != float64(id) {
			t.Fatalf("group %d sum = %v, want %v", id, s, float64(id))
		}
	}

	// Rejections: a join cannot scatter; the error reaches Wait.
	if _, err := db.RunQuery(context.Background(), QueryRun{
		Plan:  Join(Scan(tbl), Scan(tbl), "ID", "ID"),
		Retry: &RetryPolicy{},
	}); err == nil {
		t.Fatal("scattered join accepted")
	}
}

// TestShardedGCReclaimsPerShard: every shard's reclaimer prunes its own
// locals under its own watermark — after a multi-iteration run commits and
// no snapshot pins old versions, PruneNow reclaims on every shard.
func TestShardedGCReclaimsPerShard(t *testing.T) {
	const n = 8
	db, tbl := openShardedCounters(t, 2, n)
	defer db.Close()
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 6}
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}
	if pruned := db.PruneNow(); pruned == 0 {
		t.Fatal("nothing reclaimed after a committed multi-version run")
	}
	passes, pruned := db.GCStats()
	if passes < 2 || pruned == 0 {
		t.Fatalf("GCStats = (%d passes, %d pruned), want one pass per shard", passes, pruned)
	}
	// The committed state survives pruning.
	tx := db.Begin()
	defer tx.Close()
	for i := 0; i < n; i++ {
		if p, ok := tx.Read(tbl, RowID(i)); !ok || p.Float64(1) != 6 {
			t.Fatalf("row %d = (%v, %v) after GC", i, p, ok)
		}
	}
}

// TestShardedCloseRejectsAndDrains: Close waits for the distributed
// commit, later submissions fail with ErrClosed.
func TestShardedCloseRejectsAndDrains(t *testing.T) {
	db, tbl := openShardedCounters(t, 2, 4)
	subs := make([]IterativeTransaction, 4)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 3}
	}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	select {
	case <-h.Done():
	default:
		t.Fatal("Close returned with the distributed run still in flight")
	}
	if _, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != ErrClosed {
		t.Fatalf("post-Close SubmitML error = %v, want ErrClosed", err)
	}
	if _, err := db.RunQuery(context.Background(), QueryRun{Plan: Scan(tbl)}); err != ErrClosed {
		t.Fatalf("post-Close RunQuery error = %v, want ErrClosed", err)
	}
}

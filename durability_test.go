package db4ml

// Durability facade tests: restart round-trips through WithWAL at one and
// four shards, recovery idempotence, fuzzy checkpoints with WAL truncation,
// and the crash kill-points' unacknowledged-and-absent contract. The
// systematic kill-point matrix lives in internal/crashsim; these tests pin
// the public API surface.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"db4ml/internal/wal"
)

// openDurable opens a single-kernel database over dir with the Counter
// table created (or recovered) and, when load is true, n rows bulk-loaded.
func openDurable(t *testing.T, dir string, load bool, n int, opts ...Option) (*DB, *Table) {
	t.Helper()
	db := Open(append([]Option{WithWAL(dir), WithWorkers(2)}, opts...)...)
	tbl := db.Table("Counter")
	if tbl == nil {
		var err error
		tbl, err = db.CreateTable("Counter",
			Column{Name: "ID", Type: Int64},
			Column{Name: "Value", Type: Float64},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if load && tbl.NumRows() == 0 {
		rows := make([]Payload, n)
		for i := range rows {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, 0)
			rows[i] = p
		}
		if err := db.BulkLoad(tbl, rows); err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

// runIncTo drives every row of tbl to target with one ML job. run abstracts
// over the single-kernel and sharded RunML signatures.
func runIncTo(t *testing.T, run func(MLRun) error, tbl *Table, n int, target float64) {
	t.Helper()
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: target}
	}
	if err := run(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 4,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}
}

func mlRunner(db *DB) func(MLRun) error {
	return func(r MLRun) error { _, err := db.RunML(r); return err }
}

func mlRunnerSharded(db *ShardedDB) func(MLRun) error {
	return func(r MLRun) error { _, err := db.RunML(r); return err }
}

// dump reads (id, value) for n rows through a snapshot reader.
type rowReader interface {
	Read(tbl *Table, row RowID) (Payload, bool)
}

func dump(t *testing.T, tx rowReader, tbl *Table, n int) []([2]float64) {
	t.Helper()
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		p, ok := tx.Read(tbl, RowID(i))
		if !ok {
			t.Fatalf("row %d invisible", i)
		}
		out[i] = [2]float64{float64(p.Int64(0)), p.Float64(1)}
	}
	return out
}

func wantValues(t *testing.T, got [][2]float64, target float64) {
	t.Helper()
	for i, r := range got {
		if r[0] != float64(i) || r[1] != target {
			t.Fatalf("row %d = (%v, %v), want (%d, %v)", i, r[0], r[1], i, target)
		}
	}
}

func TestDurabilityRestartRoundTrip(t *testing.T) {
	const n = 8
	dir := t.TempDir()

	db, tbl := openDurable(t, dir, true, n)
	runIncTo(t, mlRunner(db), tbl, n, 5)
	before := dump(t, db.Begin(), tbl, n)
	wantValues(t, before, 5)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// First restart: checkpoint-less recovery replays the whole log —
	// creation, load, and every uber-commit — at original timestamps.
	db2, tbl2 := openDurable(t, dir, false, n)
	if tbl2.NumRows() != n {
		t.Fatalf("recovered %d rows, want %d", tbl2.NumRows(), n)
	}
	wantValues(t, dump(t, db2.Begin(), tbl2, n), 5)

	// The recovered database accepts new work whose commits are logged too.
	runIncTo(t, mlRunner(db2), tbl2, n, 8)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart replays both generations of commits.
	db3, tbl3 := openDurable(t, dir, false, n)
	defer db3.Close()
	wantValues(t, dump(t, db3.Begin(), tbl3, n), 8)
}

// TestDurabilityRecoveryIdempotent recovers from the same unchanged log
// twice and demands bit-identical results: same values, same stable
// watermark, same version-chain shapes. The per-row install guard is what
// makes a record's second application a no-op.
func TestDurabilityRecoveryIdempotent(t *testing.T) {
	const n = 4
	dir := t.TempDir()

	db, tbl := openDurable(t, dir, true, n)
	runIncTo(t, mlRunner(db), tbl, n, 3)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	shape := func(db *DB, tbl *Table) (Timestamp, [][2]float64, []int) {
		lens := make([]int, n)
		for i := range lens {
			lens[i] = tbl.Chain(RowID(i)).Len()
		}
		return db.Stable(), dump(t, db.Begin(), tbl, n), lens
	}

	db1, tbl1 := openDurable(t, dir, false, n)
	s1, v1, l1 := shape(db1, tbl1)
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	db2, tbl2 := openDurable(t, dir, false, n)
	defer db2.Close()
	s2, v2, l2 := shape(db2, tbl2)

	if s1 != s2 {
		t.Fatalf("stable differs across recoveries: %d vs %d", s1, s2)
	}
	for i := range v1 {
		if v1[i] != v2[i] || l1[i] != l2[i] {
			t.Fatalf("row %d differs across recoveries: %v/%d vs %v/%d",
				i, v1[i], l1[i], v2[i], l2[i])
		}
	}
	wantValues(t, v2, 3)
}

// TestInstallReplayIdempotent pins the guard directly: applying the same
// after-image twice installs exactly one version.
func TestInstallReplayIdempotent(t *testing.T) {
	db, tbl := openWithCounters(t, 2)
	defer db.Close()
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 0)
	p.SetFloat64(1, 42)
	ts := db.Stable() + 1
	tu := wal.TableUpdate{Table: tbl.Name(), Rows: []wal.RowUpdate{{Row: 0, Payload: p}}}
	db.mgr.Prepare().CommitAt(ts, func(ts Timestamp) { installReplay(tbl, tu, ts) })
	want := tbl.Chain(0).Len()
	db.mgr.Prepare().CommitAt(ts, func(ts Timestamp) { installReplay(tbl, tu, ts) })
	if got := tbl.Chain(0).Len(); got != want {
		t.Fatalf("second replay grew the chain: %d -> %d", want, got)
	}
	if got, _ := db.Begin().Read(tbl, 0); got.Float64(1) != 42 {
		t.Fatalf("replayed value = %v, want 42", got.Float64(1))
	}
}

func countFiles(t *testing.T, dir, contains string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), contains) {
			n++
		}
	}
	return n
}

func TestCheckpointTruncatesWALAndRecovers(t *testing.T) {
	const n = 6
	dir := t.TempDir()

	db, tbl := openDurable(t, dir, true, n)
	runIncTo(t, mlRunner(db), tbl, n, 4)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, ".db4m"); got != 1 {
		t.Fatalf("%d checkpoint files, want 1", got)
	}
	// The checkpoint rolled the log and truncated below its boundary: only
	// the fresh active segment survives.
	if got := countFiles(t, dir, ".seg"); got != 1 {
		t.Fatalf("%d WAL segments after checkpoint, want 1", got)
	}
	// Work after the checkpoint lands in the surviving tail.
	runIncTo(t, mlRunner(db), tbl, n, 7)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = checkpoint restore + tail replay.
	db2, tbl2 := openDurable(t, dir, false, n)
	defer db2.Close()
	wantValues(t, dump(t, db2.Begin(), tbl2, n), 7)

	// A second checkpoint on the recovered database supersedes the first.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, ".db4m"); got != 2 {
		t.Fatalf("%d checkpoint files, want 2", got)
	}
}

func TestCheckpointRequiresWAL(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without WithWAL succeeded")
	}
	sdb := OpenSharded(WithShards(2))
	defer sdb.Close()
	if err := sdb.Checkpoint(); err == nil {
		t.Fatal("sharded Checkpoint without WithWAL succeeded")
	}
}

// TestCheckpointCachesUnchangedSections takes two checkpoints with an
// untouched table in between and verifies the second checkpoint is still
// complete and correct — the cached section must be the real bytes, not a
// stale or empty placeholder.
func TestCheckpointCachesUnchangedSections(t *testing.T) {
	dir := t.TempDir()
	db, tbl := openDurable(t, dir, true, 4)
	defer db.Close()

	frozen, err := db.CreateTable("Frozen", Column{Name: "x", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	p := frozen.Schema().NewPayload()
	p.SetFloat64(0, 9)
	if err := db.BulkLoad(frozen, []Payload{p}); err != nil {
		t.Fatal(err)
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runIncTo(t, mlRunner(db), tbl, 4, 2) // mutate Counter only
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Wipe the WAL's contribution by reopening from the checkpoint alone:
	// delete the segments so recovery can only use the newest checkpoint.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	db2, tbl2 := openDurable(t, dir, false, 4)
	defer db2.Close()
	wantValues(t, dump(t, db2.Begin(), tbl2, 4), 2)
	fz := db2.Table("Frozen")
	if fz == nil || fz.NumRows() != 1 {
		t.Fatal("cached Frozen section lost")
	}
	if got, _ := db2.Begin().Read(fz, 0); got.Float64(0) != 9 {
		t.Fatalf("Frozen row = %v, want 9", got.Float64(0))
	}
}

func TestDurabilityShardedRestartRoundTrip(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	openS := func() (*ShardedDB, *Table) {
		db := OpenSharded(WithShards(4), WithShardScheme(ShardRoundRobin),
			WithWorkers(2), WithWAL(dir))
		tbl := db.Table("Counter")
		if tbl == nil {
			var err error
			tbl, err = db.CreateTable("Counter",
				Column{Name: "ID", Type: Int64},
				Column{Name: "Value", Type: Float64},
			)
			if err != nil {
				t.Fatal(err)
			}
			rows := make([]Payload, n)
			for i := range rows {
				p := tbl.Schema().NewPayload()
				p.SetInt64(0, int64(i))
				p.SetFloat64(1, 0)
				rows[i] = p
			}
			if err := db.BulkLoad(tbl, rows); err != nil {
				t.Fatal(err)
			}
		}
		return db, tbl
	}

	db, tbl := openS()
	runIncTo(t, mlRunnerSharded(db), tbl, n, 5)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, tbl2 := openS()
	if tbl2.NumRows() != n {
		t.Fatalf("recovered %d rows, want %d", tbl2.NumRows(), n)
	}
	tx := db2.Begin()
	got := dump(t, tx, tbl2, n)
	tx.Close()
	wantValues(t, got, 5)
	// Placement is rebuilt from configuration: round-robin spreads the
	// recovered rows across all four shards again.
	st := db2.ShardedTable("Counter")
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[st.ShardOf(RowID(i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("recovered rows on %d shards, want 4", len(seen))
	}

	// New distributed work on the recovered cluster, checkpoint, restart.
	runIncTo(t, mlRunnerSharded(db2), tbl2, n, 9)
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, tbl3 := openS()
	defer db3.Close()
	tx3 := db3.Begin()
	got3 := dump(t, tx3, tbl3, n)
	tx3.Close()
	wantValues(t, got3, 9)
}

// TestCrashPointUnackedAbsent smokes the kill-point contract at the facade:
// a run crashed after its in-memory publish (but before the WAL append) is
// never acknowledged, and after recovery its commit is absent.
func TestCrashPointUnackedAbsent(t *testing.T) {
	const n = 4
	dir := t.TempDir()

	db, tbl := openDurable(t, dir, true, n, WithCrashPoints(NewCrashKiller(CrashAfterPrepare)))
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 3}
	}
	_, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 4,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != ErrCrashed {
		t.Fatalf("crashed run returned %v, want ErrCrashed", err)
	}
	// The values ARE published in the dying process's memory — that is the
	// point of this kill window.
	if got, _ := db.Begin().Read(tbl, 0); got.Float64(1) != 3 {
		t.Fatalf("pre-crash memory = %v, want 3", got.Float64(1))
	}
	db.Close()

	db2, tbl2 := openDurable(t, dir, false, n)
	defer db2.Close()
	wantValues(t, dump(t, db2.Begin(), tbl2, n), 0)
}

// TestWALSyncPolicies exercises the two non-default fsync policies through
// a full restart.
func TestWALSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    WALSyncPolicy
	}{{"interval", WALSyncInterval}, {"none", WALSyncNone}} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			dir := t.TempDir()
			db, tbl := openDurable(t, dir, true, n, WithWALSync(tc.p))
			runIncTo(t, mlRunner(db), tbl, n, 2)
			if err := db.Close(); err != nil { // clean Close fsyncs the tail
				t.Fatal(err)
			}
			db2, tbl2 := openDurable(t, dir, false, n)
			defer db2.Close()
			wantValues(t, dump(t, db2.Begin(), tbl2, n), 2)
		})
	}
}

# Tier-1 gate: everything `make check` runs must stay green.
.PHONY: check build vet test test-race-short bench-smoke chaos fuzz resilience staticcheck obs gc plan shard recovery

check: build vet test test-race-short

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Race gate over the concurrency-bearing kernel packages. -short skips the
# long all-experiment sweeps; the dedicated queue/storage/exec/itx stress
# tests all still run.
test-race-short:
	go test -race -short ./internal/...

# One fast pass over the benchmark harness to catch bit-rot without a full
# benchmark run.
bench-smoke:
	go test -bench=BenchmarkObserverOverhead -benchtime=1x -run '^$$' .

# Observability gate: the zero-alloc contracts of the disabled hot paths
# (enforced as tests), the observability test surface under the race
# detector — including the cluster-wide surface (the sharded debug server
# end-to-end test scrapes /debug/shards, /debug/query, and the merged
# /debug/trace off a live 4-shard run) — then the overhead benchmarks for
# eyeballing against the <2% budget documented in EXPERIMENTS.md.
obs:
	go vet ./internal/obs ./internal/trace ./internal/introspect
	go test -race ./internal/obs ./internal/trace ./internal/introspect
	go test -race -run 'Observability|DebugServer|LatenciesAndTrace|BarrierSkew|StampsNothing|MergedTrace|ShardedTraceAllShards|ExplainAnalyze|ShardedExplain' . ./internal/exec
	go test -bench 'ObserverOverhead|TraceOverhead|HistogramOverhead|DistTraceOverhead|WALMetricsOverhead' -benchtime 20x -run '^$$' .

# Seeded fault-injection sweep: 8 fault schedules per isolation level,
# every recorded history checked against the isolation contracts. A failing
# seed is replayable with `go test ./internal/check -run TestInvariantSweep`
# or check.RunTrial directly.
chaos:
	go run ./cmd/db4ml-bench -exp chaos -seeds 8

# Chaos-backed supervision gate: every panic-containment, watchdog,
# deadline, retry, and admission test under the race detector, then one
# quick pass of the resilience experiment (burst of flaky/spinning jobs
# against a live fault injector, oracle-checked).
resilience:
	go test -race -timeout 5m -run 'Panic|Watchdog|Stall|Deadline|Retry|Overload|Admission|Degradation|ChaosRetry|GoroutineLeak' . ./internal/exec ./internal/resilience
	go run ./cmd/db4ml-bench -exp resilience -quick

# Version-GC gate: the chain-walk-during-Prune regression and every
# registry/reclaimer/facade GC test under the race detector, the GC-enabled
# chaos sweep, then a quick pass of the soak experiment (retained-version
# flatness is asserted inside the experiment itself). The committed
# BENCH_GC.json comes from the full run:
#   go run ./cmd/db4ml-bench -exp gc -benchjson BENCH_GC.json
gc:
	go test -race -run 'TestPrune|SafeWatermark|OverEagerWatermark|TombstoneChurn|CommitAndAbortBothUnpin' ./internal/storage ./internal/txn ./internal/gc
	go test -race -run 'TestSoakVersionCountFlat|WithVersionGC|PruneNow' .
	go test -race -run 'TestInvariantSweepWithGC' ./internal/check
	go run ./cmd/db4ml-bench -exp gc -quick

# Query-plan gate: the plan package (rewrite rules, streaming executor,
# iterate node, randomized streamed==materialized property test) and the
# facade query tests under the race detector, the scan-pin conviction
# tests, then a quick pass of the plan experiment (output equality across
# all strategies and the speedup floor are asserted inside the experiment).
# The committed BENCH_PLAN.json comes from the full run:
#   go run ./cmd/db4ml-bench -exp plan -runs 5 -benchjson BENCH_PLAN.json
plan:
	go test -race ./internal/plan
	go test -race -run 'Query|PageRankViaIterate|IterateComposes' .
	go test -race -run 'TestTableScanPinsSnapshotAgainstGC|TestSlowScanSurvivesAggressiveReclaimer' ./internal/relational
	go run ./cmd/db4ml-bench -exp plan -quick

# Sharding gate: the shard package (router/table/coordinator/rendezvous,
# including the Route-vs-Repartition and Submit-vs-Close race tests) and
# the sharded facade tests under the race detector, the cross-shard
# invariant sweep (2PC atomicity + cross-shard staleness checkers over 36+
# chaos schedules) with its conviction tests, the scatter-gather plan
# tests, then a quick pass of the shard experiment (the identical-result
# and atomic-commit invariants are asserted inside the experiment). The
# committed BENCH_SHARD.json comes from the full run:
#   go run ./cmd/db4ml-bench -exp shard -runs 5 -benchjson BENCH_SHARD.json
shard:
	go test -race ./internal/shard
	go test -race -run 'TestSharded' .
	go test -race -run 'TestShardInvariantSweep|TestShardFaultFreeControl|TestCheckerCatchesSplitBrainCommit|TestCheckerCatchesBrokenCrossShardStaleness' ./internal/check
	go test -race -run 'TestScatterGather' ./internal/plan
	go run ./cmd/db4ml-bench -exp shard -quick

# Durability gate: the WAL and checkpoint packages (framing, group commit,
# torn-tail truncation, fuzzy-checkpoint round trips) and the facade
# durability tests under the race detector, then the kill-point recovery
# harness — every crash point × 1/2/4 shards checked against the
# committed-exactly-or-absent contract, plus the planted-violation
# conviction tests — and a quick pass of the recovery experiment. The
# committed BENCH_RECOVERY.json comes from the full run:
#   go run ./cmd/db4ml-bench -exp recovery -runs 2 -benchjson BENCH_RECOVERY.json
recovery:
	go test -race ./internal/wal ./internal/checkpoint
	go test -race -run 'TestDurability|TestCheckpoint|TestInstallReplay|TestCrashPoint|TestWALSync' .
	go test -race ./internal/crashsim
	go test -race -run 'TestRecovery' ./internal/check
	go run ./cmd/db4ml-bench -exp recovery -quick

# Optional deeper static analysis; no-op when staticcheck is not on PATH
# (the container image does not bake it in, CI installs it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# Short coverage-guided fuzz pass over the storage payload codec, the
# iterative-record install/read seqlock, the WAL replay path, and the
# checkpoint loader. The committed corpora under */testdata/fuzz seed all
# four targets.
fuzz:
	go test -fuzz '^FuzzPayloadRoundTrip$$' -fuzztime 30s -run '^$$' ./internal/storage
	go test -fuzz '^FuzzRecordInstall$$' -fuzztime 30s -run '^$$' ./internal/storage
	go test -fuzz '^FuzzWALReplay$$' -fuzztime 30s -run '^$$' ./internal/wal
	go test -fuzz '^FuzzCheckpointLoad$$' -fuzztime 30s -run '^$$' ./internal/checkpoint

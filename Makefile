# Tier-1 gate: everything `make check` runs must stay green.
.PHONY: check build vet test test-race-short bench-smoke

check: build vet test test-race-short

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Race gate over the concurrency-bearing kernel packages. -short skips the
# long all-experiment sweeps; the dedicated queue/storage/exec/itx stress
# tests all still run.
test-race-short:
	go test -race -short ./internal/...

# One fast pass over the benchmark harness to catch bit-rot without a full
# benchmark run.
bench-smoke:
	go test -bench=BenchmarkObserverOverhead -benchtime=1x -run '^$$' .

# Tier-1 gate: everything `make check` runs must stay green.
.PHONY: check build vet test test-race-short bench-smoke chaos fuzz

check: build vet test test-race-short

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Race gate over the concurrency-bearing kernel packages. -short skips the
# long all-experiment sweeps; the dedicated queue/storage/exec/itx stress
# tests all still run.
test-race-short:
	go test -race -short ./internal/...

# One fast pass over the benchmark harness to catch bit-rot without a full
# benchmark run.
bench-smoke:
	go test -bench=BenchmarkObserverOverhead -benchtime=1x -run '^$$' .

# Seeded fault-injection sweep: 8 fault schedules per isolation level,
# every recorded history checked against the isolation contracts. A failing
# seed is replayable with `go test ./internal/check -run TestInvariantSweep`
# or check.RunTrial directly.
chaos:
	go run ./cmd/db4ml-bench -exp chaos -seeds 8

# Short coverage-guided fuzz pass over the storage payload codec and the
# iterative-record install/read seqlock. The committed corpus under
# internal/storage/testdata/fuzz seeds both targets.
fuzz:
	go test -fuzz '^FuzzPayloadRoundTrip$$' -fuzztime 30s -run '^$$' ./internal/storage
	go test -fuzz '^FuzzRecordInstall$$' -fuzztime 30s -run '^$$' ./internal/storage

// Package db4ml is the public API of this DB4ML reproduction: an in-memory
// database kernel with machine-learning support (Jasny et al., SIGMOD
// 2020). It exposes the paper's programming model — ML-tables queried and
// updated by classical transactions, plus user-defined ML algorithms
// written as iterative transactions and executed by a parallel engine
// under ML-specific isolation levels (synchronous, asynchronous,
// bounded staleness).
//
// A minimal session:
//
//	db := db4ml.Open()
//	nodes, _ := db.CreateTable("Node",
//		db4ml.Column{Name: "NodeID", Type: db4ml.Int64},
//		db4ml.Column{Name: "PR", Type: db4ml.Float64})
//	... bulk load, then run an ML algorithm:
//	stats, _ := db.RunML(db4ml.MLRun{
//		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
//		Attach:    []db4ml.Attachment{{Table: nodes}},
//		Subs:      mySubTransactions,
//	})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package db4ml

import (
	"fmt"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Re-exported building blocks. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Table is an ML-table: an MVCC-versioned, partitionable in-memory
	// table usable by both OLTP transactions and ML algorithms.
	Table = table.Table
	// Column declares one table column.
	Column = table.Column
	// RowID identifies a row within a table.
	RowID = table.RowID
	// Payload is a row image; see Schema.NewPayload.
	Payload = storage.Payload
	// Timestamp is a logical commit timestamp.
	Timestamp = storage.Timestamp
	// Txn is a snapshot-isolation OLTP transaction.
	Txn = txn.Txn
	// IterativeTransaction is the paper's Listing-1 interface: Begin
	// caches tx_state, Execute runs one iteration, Validate returns
	// Commit, Rollback, or Done.
	IterativeTransaction = itx.Sub
	// Ctx mediates an iterative transaction's reads and writes under the
	// chosen ML isolation level.
	Ctx = itx.Ctx
	// Action is an iterative transaction's validate verdict.
	Action = itx.Action
	// MLOptions selects the ML isolation level for one uber-transaction.
	MLOptions = isolation.Options
	// ExecStats reports what one ML run did.
	ExecStats = exec.Stats
	// Topology is the simulated NUMA layout used for worker pinning and
	// data partitioning.
	Topology = numa.Topology
	// Observer collects engine telemetry for one ML run: per-worker
	// counters, queue/liveness gauges, and a convergence time series. See
	// NewObserver and MLRun.Observer.
	Observer = obs.Observer
	// TelemetrySnapshot is an Observer's exportable state.
	TelemetrySnapshot = obs.Snapshot
)

// NewObserver creates a telemetry observer to pass in MLRun.Observer. One
// observer serves one run at a time; rerunning resets it.
func NewObserver() *Observer { return obs.New() }

// Column types.
const (
	Int64   = table.Int64
	Float64 = table.Float64
)

// Validate verdicts (Listing 1's T_Action).
const (
	Commit   = itx.Commit
	Rollback = itx.Rollback
	Done     = itx.Done
)

// ML isolation levels (Section 4.2).
const (
	Synchronous      = isolation.Synchronous
	Asynchronous     = isolation.Asynchronous
	BoundedStaleness = isolation.BoundedStaleness
)

// ErrConflict is returned by Txn.Commit when another transaction committed
// a conflicting write first, including an ML uber-transaction holding an
// in-flight iterative version of a written row.
var ErrConflict = txn.ErrConflict

// DB is one database instance: a set of ML-tables sharing a transaction
// manager and timestamp oracle.
type DB struct {
	mgr    *txn.Manager
	tables map[string]*Table
}

// Open creates an empty database.
func Open() *DB {
	return &DB{mgr: txn.NewManager(), tables: make(map[string]*Table)}
}

// CreateTable adds a new, empty ML-table.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("db4ml: table %q already exists", name)
	}
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := table.New(name, schema)
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Begin starts an OLTP transaction on the most recent stable snapshot.
func (db *DB) Begin() *Txn { return db.mgr.Begin() }

// BulkLoad appends rows to tbl in one atomic publish: either every row is
// visible (all with the same timestamp) or, on error, the load stops and
// the loaded prefix remains — use fresh tables for loading.
func (db *DB) BulkLoad(tbl *Table, rows []Payload) error {
	var err error
	db.mgr.PublishAt(func(ts Timestamp) {
		for _, r := range rows {
			if _, e := tbl.Append(ts, r); e != nil {
				err = e
				return
			}
		}
	})
	return err
}

// Stable returns the newest fully published commit timestamp; reads at
// Stable observe a consistent snapshot.
func (db *DB) Stable() Timestamp { return db.mgr.Stable() }

// Manager exposes the underlying transaction manager for advanced uses
// (the experiment harness and the internal ML implementations take it
// directly).
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Attachment names one table (and optionally a row subset) an ML run will
// update. Versions overrides the per-record snapshot-slot count; 0 uses
// the isolation level's default (Section 5.1 optimizations).
type Attachment struct {
	Table    *Table
	Rows     []RowID
	Versions int
}

// MLRun describes one ML algorithm execution: which tables it updates,
// the sub-transactions to drive to convergence, and how to run them.
type MLRun struct {
	// Isolation selects the synchronization scheme.
	Isolation MLOptions
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int
	// Regions overrides the simulated NUMA region count (default: the
	// paper's 8-cores-per-region layout).
	Regions int
	// BatchSize is the scheduling batch size (default 256).
	BatchSize int
	// MaxIterations force-retires sub-transactions after that many
	// committed iterations (0 = run to convergence).
	MaxIterations uint64
	// Attach lists the tables the algorithm updates.
	Attach []Attachment
	// Subs are the user-defined iterative transactions.
	Subs []IterativeTransaction
	// RegionOf routes sub-transaction i to a NUMA region; nil spreads
	// round-robin.
	RegionOf func(i int) int
	// IterationHook runs before every sub-transaction execution
	// (experiments use it to inject stragglers).
	IterationHook func(worker int)
	// Observer, when non-nil, collects engine telemetry for this run
	// (counters, gauges, convergence series). nil keeps telemetry fully
	// disabled at zero cost. See NewObserver.
	Observer *Observer
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively at the first round where every live one votes Done —
	// the global convergence criterion of bulk-synchronous engines. Use
	// it when a sub-transaction's value can become momentarily stable
	// while its inputs still change (e.g. PageRank).
	ConvergeTogether bool
}

// RunML executes one ML algorithm as an uber-transaction: it installs
// iterative records on the attached tables, drives the sub-transactions to
// convergence, and atomically publishes the result. On error the
// uber-transaction is aborted and the tables are untouched.
func (db *DB) RunML(run MLRun) (ExecStats, error) {
	u, err := itx.BeginUber(db.mgr, run.Isolation)
	if err != nil {
		return ExecStats{}, err
	}
	for _, a := range run.Attach {
		v := a.Versions
		if v == 0 {
			v = u.DefaultVersions()
		}
		if err := u.Attach(a.Table, a.Rows, v); err != nil {
			_ = u.Abort()
			return ExecStats{}, err
		}
	}
	cfg := exec.Config{
		Workers:          run.Workers,
		BatchSize:        run.BatchSize,
		MaxIterations:    run.MaxIterations,
		IterationHook:    run.IterationHook,
		ConvergeTogether: run.ConvergeTogether,
		Observer:         run.Observer,
	}
	if run.Regions > 0 {
		cfg.Topology = numa.NewTopology(run.Regions, cfg.Resolved().Workers)
	}
	stats := exec.New(cfg, run.Isolation).Run(run.Subs, run.RegionOf)
	if _, err := u.Commit(); err != nil {
		return stats, err
	}
	return stats, nil
}

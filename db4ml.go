// Package db4ml is the public API of this DB4ML reproduction: an in-memory
// database kernel with machine-learning support (Jasny et al., SIGMOD
// 2020). It exposes the paper's programming model — ML-tables queried and
// updated by classical transactions, plus user-defined ML algorithms
// written as iterative transactions and executed by a parallel engine
// under ML-specific isolation levels (synchronous, asynchronous,
// bounded staleness).
//
// A minimal session:
//
//	db := db4ml.Open()
//	nodes, _ := db.CreateTable("Node",
//		db4ml.Column{Name: "NodeID", Type: db4ml.Int64},
//		db4ml.Column{Name: "PR", Type: db4ml.Float64})
//	... bulk load, then run an ML algorithm:
//	stats, _ := db.RunML(db4ml.MLRun{
//		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
//		Attach:    []db4ml.Attachment{{Table: nodes}},
//		Subs:      mySubTransactions,
//	})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package db4ml

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/gc"
	"db4ml/internal/introspect"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/partition"
	"db4ml/internal/resilience"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
	"db4ml/internal/wal"
)

// Re-exported building blocks. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Table is an ML-table: an MVCC-versioned, partitionable in-memory
	// table usable by both OLTP transactions and ML algorithms.
	Table = table.Table
	// Column declares one table column.
	Column = table.Column
	// RowID identifies a row within a table.
	RowID = table.RowID
	// Payload is a row image; see Schema.NewPayload.
	Payload = storage.Payload
	// Timestamp is a logical commit timestamp.
	Timestamp = storage.Timestamp
	// Txn is a snapshot-isolation OLTP transaction.
	Txn = txn.Txn
	// IterativeTransaction is the paper's Listing-1 interface: Begin
	// caches tx_state, Execute runs one iteration, Validate returns
	// Commit, Rollback, or Done.
	IterativeTransaction = itx.Sub
	// Ctx mediates an iterative transaction's reads and writes under the
	// chosen ML isolation level.
	Ctx = itx.Ctx
	// Action is an iterative transaction's validate verdict.
	Action = itx.Action
	// MLOptions selects the ML isolation level for one uber-transaction.
	MLOptions = isolation.Options
	// ExecStats reports what one ML run did.
	ExecStats = exec.Stats
	// Topology is the simulated NUMA layout used for worker pinning and
	// data partitioning.
	Topology = numa.Topology
	// Observer collects engine telemetry for one ML run: per-worker
	// counters, queue/liveness gauges, and a convergence time series. See
	// NewObserver and MLRun.Observer.
	Observer = obs.Observer
	// TelemetrySnapshot is an Observer's exportable state.
	TelemetrySnapshot = obs.Snapshot
	// Tracer records an ML run's scheduling timeline (batch passes, queue
	// waits, barrier skew, steals, faults, retries, commits) into fixed-size
	// per-worker ring buffers, exportable as Chrome trace_event JSON. See
	// NewTracer and MLRun.Tracer; WithDebugServer creates a shared one
	// automatically.
	Tracer = trace.Tracer
	// FaultInjector perturbs engine scheduling at the chaos injection
	// points — deterministic, seed-replayable fault injection for tests and
	// experiments (see internal/chaos and chaos.NewSeeded). Production runs
	// leave it nil.
	FaultInjector = chaos.Injector
	// RetryPolicy governs whole-job abort-retry on SubmitML/RunML: failed
	// attempts whose uber-transaction aborted (so no state is visible) are
	// resubmitted with deterministic exponential backoff. See WithRetry and
	// MLRun.Retry.
	RetryPolicy = resilience.RetryPolicy
)

// RunRecorder receives one ML run's isolation-relevant history: every
// mediated read, validation, install, and barrier flip (exec.Recorder), plus
// the uber-transaction's final commit or abort. internal/check implements it
// to validate the paper's isolation contracts post-hoc; nil disables
// recording at zero cost. Implementations are called concurrently.
type RunRecorder interface {
	exec.Recorder
	// RecordUberCommit: the uber-transaction committed; its result became
	// visible to OLTP transactions at timestamp ts.
	RecordUberCommit(ts Timestamp)
	// RecordUberAbort: the uber-transaction aborted; none of its updates
	// ever became visible.
	RecordUberAbort()
}

// NewObserver creates a telemetry observer to pass in MLRun.Observer. One
// observer serves one run at a time; rerunning resets it.
func NewObserver() *Observer { return obs.New() }

// NewTracer creates a span tracer to pass in MLRun.Tracer: one ring of the
// given capacity (0 = a sensible default) per worker. Size workers to the
// database's pool; out-of-range worker indexes fold into the first ring, so
// oversizing is never needed. One tracer may be shared by concurrent runs —
// events carry the owning job's id.
func NewTracer(workers, capacity int) *Tracer { return trace.New(workers, capacity) }

// Column types.
const (
	Int64   = table.Int64
	Float64 = table.Float64
)

// Validate verdicts (Listing 1's T_Action).
const (
	Commit   = itx.Commit
	Rollback = itx.Rollback
	Done     = itx.Done
)

// ML isolation levels (Section 4.2).
const (
	Synchronous      = isolation.Synchronous
	Asynchronous     = isolation.Asynchronous
	BoundedStaleness = isolation.BoundedStaleness
)

// ErrConflict is returned by Txn.Commit when another transaction committed
// a conflicting write first, including an ML uber-transaction holding an
// in-flight iterative version of a written row.
var ErrConflict = txn.ErrConflict

// ErrClosed is returned by SubmitML and RunML after DB.Close.
var ErrClosed = fmt.Errorf("db4ml: database closed")

// ErrJobCancelled is reported by JobHandle.Wait when the job was cancelled
// (via JobHandle.Cancel; a context cancellation surfaces the context's
// error instead).
var ErrJobCancelled = exec.ErrJobCancelled

// Supervision-layer errors (see internal/resilience). Classify with
// errors.Is; the matched error also carries evidence retrievable with
// errors.As (resilience.PanicError, StallError, DeadlineError).
var (
	// ErrJobPanicked: a sub-transaction callback panicked; the panic was
	// contained, the uber-transaction aborted, and the stack is attached.
	ErrJobPanicked = resilience.ErrJobPanicked
	// ErrJobStalled: the progress watchdog saw no iteration heartbeat for
	// the configured stall window and retired the job.
	ErrJobStalled = resilience.ErrJobStalled
	// ErrJobDeadline: the job ran past its wall-clock deadline before
	// converging and was retired.
	ErrJobDeadline = resilience.ErrJobDeadline
	// ErrOverloaded: admission control rejected the submission — the
	// in-flight ML job limit (WithMaxInflight) was reached and waiting was
	// not enabled (WithAdmissionWait).
	ErrOverloaded = resilience.ErrOverloaded
)

// DB is one database instance: a set of ML-tables sharing a transaction
// manager, a timestamp oracle, and one persistent execution pool. The pool's
// workers — stand-ins for the paper's core-pinned threads — start at Open
// and serve every ML run submitted to this DB, interleaving concurrent
// uber-transactions; Close drains and stops them.
type DB struct {
	mgr  *txn.Manager
	pool *exec.Pool

	tblMu  sync.RWMutex
	tables map[string]*Table

	// reclaimer is the version garbage collector, always constructed so
	// PruneNow works; WithVersionGC additionally runs it periodically on a
	// pool maintenance goroutine. gcObs is its dedicated observer, non-nil
	// only under WithDebugServer (it feeds the /metrics GC families).
	reclaimer *gc.Reclaimer
	gcObs     *obs.Observer

	// dur is the durability state (WAL, checkpoint cache, crash killer),
	// non-nil only under WithWAL. It is armed by restore() AFTER recovery
	// replay, so replay never re-logs the records it is applying.
	dur *durability

	// Supervision defaults applied to every run unless MLRun overrides
	// them, plus the admission gate bounding concurrent ML jobs.
	deadline  time.Duration
	stall     time.Duration
	retry     RetryPolicy
	gate      *resilience.Gate
	admitWait bool
	degrade   func(pressure float64, batch int) int

	// Introspection state, non-nil only under WithDebugServer: a shared
	// span tracer, the aggregator folding every run's telemetry into the
	// /metrics totals, and the job table backing /debug/jobs.
	tracer *trace.Tracer
	agg    *introspect.Aggregator
	debug  *introspect.Server

	jobsMu   sync.Mutex
	liveJobs map[*JobHandle]jobMeta
	recent   []introspect.JobInfo
	queries  []introspect.QueryInfo

	// queryID tags each SubmitQuery/PrepareQuery with a trace span id.
	queryID atomic.Uint64

	mu     sync.Mutex
	closed bool
	// handles tracks every SubmitML handle goroutine so Close can wait for
	// the uber-transactions' commits/aborts, not just the pool drain: the
	// pool finishes a job before the handle goroutine publishes its result,
	// and "Close returned" must mean "no ML commit is still in flight".
	handles sync.WaitGroup
}

// jobMeta is the per-handle context the job table needs beyond what the
// engine's Job exposes.
type jobMeta struct {
	deadline time.Duration
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	workers     int
	regions     int
	chaos       chaos.Injector
	deadline    time.Duration
	stall       time.Duration
	retry       RetryPolicy
	maxInflight int
	admitWait   bool
	degrade     func(pressure float64, batch int) int
	debugAddr   string
	gcInterval  time.Duration
	shards      int
	shardScheme partition.Scheme
	walDir      string
	walPolicy   wal.SyncPolicy
	walInterval time.Duration
	ckptEvery   time.Duration
	crash       *chaos.Killer
}

// WithWorkers sets the size of the database's worker pool (default
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *openConfig) { c.workers = n } }

// WithRegions overrides the simulated NUMA region count of the pool's
// topology (default: the paper's 8-cores-per-region layout). The region
// count is clamped to the worker count so every region has a worker.
func WithRegions(n int) Option { return func(c *openConfig) { c.regions = n } }

// WithChaos attaches a fault injector to the database's worker pool, which
// perturbs cross-region work stealing. Per-run injection points are
// configured separately via MLRun.Chaos (usually with the same injector).
// Test/experiment only; see internal/chaos.
func WithChaos(inj FaultInjector) Option { return func(c *openConfig) { c.chaos = inj } }

// WithDeadline sets the default wall-clock budget for every ML run: a job
// that has not converged within d is retired and Wait reports
// ErrJobDeadline. MLRun.Deadline overrides it per run; 0 disables.
func WithDeadline(d time.Duration) Option { return func(c *openConfig) { c.deadline = d } }

// WithStallTimeout arms the default progress watchdog: a job with no
// iteration heartbeat for d — a sub-transaction wedged in user code, a
// scheduling livelock — is convicted and Wait reports ErrJobStalled.
// MLRun.StallTimeout overrides it per run; 0 disables.
func WithStallTimeout(d time.Duration) Option { return func(c *openConfig) { c.stall = d } }

// WithRetry sets the default abort-retry policy: a run that fails with a
// retryable error (by default panicked or stalled jobs — the
// uber-transaction aborted, so the rerun is side-effect-free) is
// resubmitted up to p.MaxAttempts times with deterministic backoff.
// MLRun.Retry overrides it per run.
func WithRetry(p RetryPolicy) Option { return func(c *openConfig) { c.retry = p } }

// WithMaxInflight bounds the number of concurrently admitted ML jobs
// (SubmitML calls in flight, including retries and final commit/abort). At
// the limit, SubmitML fast-fails with ErrOverloaded — load shedding —
// unless WithAdmissionWait is also set. n <= 0 leaves admission unbounded.
func WithMaxInflight(n int) Option { return func(c *openConfig) { c.maxInflight = n } }

// WithAdmissionWait makes a SubmitML that hits the WithMaxInflight limit
// block until a slot frees (or its ctx is cancelled) instead of
// fast-failing with ErrOverloaded.
func WithAdmissionWait() Option { return func(c *openConfig) { c.admitWait = true } }

// WithDegradation installs a batch-size degradation hook: on every
// admission the hook maps (gate pressure in [0,1], the run's resolved batch
// size) to the batch size actually used, letting the engine trade peak
// throughput for finer-grained scheduling under load. A nil fn installs
// DefaultDegradation. Without WithMaxInflight there is no pressure signal
// and the hook never shrinks anything.
func WithDegradation(fn func(pressure float64, batch int) int) Option {
	return func(c *openConfig) {
		if fn == nil {
			fn = DefaultDegradation
		}
		c.degrade = fn
	}
}

// WithVersionGC enables the background version garbage collector: every
// interval, a pool maintenance goroutine prunes all tables' version chains
// below the oldest active snapshot (the transaction manager's safe
// watermark) and strips superseded iterative-record slabs. Without it —
// and without manual PruneNow calls — version chains grow for the life of
// the process. GC never stalls workers or changes what any reader
// observes; it only reclaims versions no active transaction can reach.
func WithVersionGC(interval time.Duration) Option {
	return func(c *openConfig) { c.gcInterval = interval }
}

// WithDebugServer starts a live introspection HTTP server on addr (e.g.
// ":6060", or "127.0.0.1:0" to pick a free port — read it back with
// DB.DebugAddr). The server exposes /metrics (Prometheus text format,
// aggregated across every ML run), /debug/jobs (the live job table),
// /debug/trace (the shared span tracer as Chrome trace_event JSON, openable
// in Perfetto or about:tracing), and /debug/pprof. Enabling it auto-attaches
// an Observer and the shared Tracer to runs that don't bring their own.
// Open panics if addr cannot be bound — the server is an explicit opt-in,
// so failing to start it is a configuration error, not a degraded mode.
func WithDebugServer(addr string) Option { return func(c *openConfig) { c.debugAddr = addr } }

// DefaultDegradation is the built-in degradation policy: at pressure ≥ 0.75
// the batch size is quartered, at ≥ 0.5 halved, floored at 16. Smaller
// batches reach scheduling points (and cancellation/deadline checks) more
// often, smoothing latency when the pool is oversubscribed.
func DefaultDegradation(pressure float64, batch int) int {
	switch {
	case pressure >= 0.75:
		batch /= 4
	case pressure >= 0.5:
		batch /= 2
	}
	if batch < 16 {
		batch = 16
	}
	return batch
}

// Open creates an empty database and starts its worker pool. Call Close
// when done to stop the workers.
func Open(opts ...Option) *DB {
	var oc openConfig
	for _, o := range opts {
		o(&oc)
	}
	cfg := exec.Config{Workers: oc.workers, Chaos: oc.chaos}
	if oc.regions > 0 {
		cfg.Topology = numa.NewTopology(oc.regions, cfg.Resolved().Workers)
	}
	pool, err := exec.NewPool(cfg)
	if err != nil {
		// Unreachable: NewTopology clamps regions to the worker count, so
		// the only validated constraint always holds.
		panic("db4ml: " + err.Error())
	}
	db := &DB{
		mgr:       txn.NewManager(),
		tables:    make(map[string]*Table),
		pool:      pool,
		deadline:  oc.deadline,
		stall:     oc.stall,
		retry:     oc.retry,
		gate:      resilience.NewGate(oc.maxInflight),
		admitWait: oc.admitWait,
		degrade:   oc.degrade,
	}
	db.reclaimer = gc.New(db.mgr, db.tableList)
	if oc.debugAddr != "" {
		db.tracer = trace.New(cfg.Resolved().Workers, 0)
		db.agg = introspect.NewAggregator()
		db.liveJobs = make(map[*JobHandle]jobMeta)
		srv, err := introspect.Start(introspect.Config{
			Addr:    oc.debugAddr,
			Metrics: db.agg.Snapshot,
			Jobs:    db.jobInfos,
			Queries: db.queryInfos,
			Tracer:  db.tracer,
		})
		if err != nil {
			pool.Close()
			panic("db4ml: " + err.Error())
		}
		db.debug = srv
		// The GC's own observer stays attached for the server's lifetime so
		// /metrics carries versions_pruned/gc_passes and the gc_pause
		// histogram alongside the per-run telemetry.
		db.gcObs = obs.New()
		db.reclaimer.SetObserver(db.gcObs)
		db.reclaimer.SetTracer(db.tracer)
		db.agg.Attach(db.gcObs)
	}
	if oc.gcInterval > 0 {
		// Stopped by pool.Close (DB.Close): the maintenance goroutine is
		// pool-owned.
		pool.Maintain(oc.gcInterval, func() { db.reclaimer.Pass() })
	}
	if oc.walDir != "" {
		// Recovery runs before anything is served: checkpoint restore, WAL
		// tail replay, then the log is armed for new appends.
		db.restore(oc)
		if oc.ckptEvery > 0 {
			pool.Maintain(oc.ckptEvery, func() { _ = db.Checkpoint() })
		}
	}
	return db
}

// tableList snapshots the current table set for the reclaimer.
func (db *DB) tableList() []*table.Table {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	out := make([]*table.Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	return out
}

// PruneNow runs one version-GC pass synchronously — all tables, watermark
// clamped to the oldest active snapshot — and returns the number of
// versions reclaimed. Useful in tests and for databases opened without
// WithVersionGC.
func (db *DB) PruneNow() int {
	return db.reclaimer.Pass().Pruned
}

// GCStats reports the reclaimer's lifetime totals: completed passes and
// versions reclaimed.
func (db *DB) GCStats() (passes, pruned uint64) {
	return db.reclaimer.Passes(), db.reclaimer.TotalPruned()
}

// DebugAddr returns the debug server's bound address (host:port), or "" when
// WithDebugServer was not used.
func (db *DB) DebugAddr() string {
	if db.debug == nil {
		return ""
	}
	return db.debug.Addr()
}

// jobInfos assembles the /debug/jobs table: every in-flight handle plus the
// most recently settled runs.
func (db *DB) jobInfos() []introspect.JobInfo {
	db.jobsMu.Lock()
	defer db.jobsMu.Unlock()
	out := append([]introspect.JobInfo(nil), db.recent...)
	for h, m := range db.liveJobs {
		j := h.job.Load()
		out = append(out, introspect.NewJobInfo(j.ID(), j.Label(), "running",
			h.Attempts(), j.Live(), j.Total(), j.Started(), m.deadline))
	}
	return out
}

// maxRecentJobs bounds how many settled runs /debug/jobs keeps listing.
const maxRecentJobs = 64

// settleJob moves a resolved handle from the live job table to the recent
// list. No-op without a debug server.
func (db *DB) settleJob(h *JobHandle, deadline time.Duration) {
	if db.debug == nil {
		return
	}
	j := h.job.Load()
	state := "done"
	if h.err != nil {
		state = "failed: " + h.err.Error()
	}
	info := introspect.NewJobInfo(j.ID(), j.Label(), state,
		h.Attempts(), j.Live(), j.Total(), j.Started(), deadline)
	info.CommitTS = uint64(h.ts)
	db.jobsMu.Lock()
	delete(db.liveJobs, h)
	db.recent = append(db.recent, info)
	if len(db.recent) > maxRecentJobs {
		db.recent = db.recent[len(db.recent)-maxRecentJobs:]
	}
	db.jobsMu.Unlock()
}

// Close drains the in-flight ML jobs — including each uber-transaction's
// final commit or abort — and stops the worker pool. Further SubmitML/RunML
// calls fail with ErrClosed; OLTP transactions and reads keep working.
// Close is idempotent, and every concurrent Close waits for the full drain
// rather than returning early while another Close is still draining.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	pool := db.pool
	db.mu.Unlock()
	pool.Close()
	db.handles.Wait()
	if db.dur != nil {
		// After the drain no commit is mid-append; Close flushes and fsyncs
		// the tail so a clean shutdown loses nothing even under WALSyncNone.
		_ = db.dur.log.Close()
	}
	if db.debug != nil {
		_ = db.debug.Close()
	}
	return nil
}

// CreateTable adds a new, empty ML-table.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	db.tblMu.Lock()
	defer db.tblMu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("db4ml: table %q already exists", name)
	}
	t := table.New(name, schema)
	if db.dur != nil {
		// Log the creation before registering: if the append fails (crash,
		// I/O error) the table never existed, matching what recovery will
		// reconstruct.
		if err := db.dur.appendCreate(name, cols); err != nil {
			return nil, err
		}
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	return db.tables[name]
}

// Begin starts an OLTP transaction on the most recent stable snapshot.
func (db *DB) Begin() *Txn { return db.mgr.Begin() }

// BulkLoad appends rows to tbl in one atomic publish: either every row is
// visible (all with the same timestamp) or, on error, the load stops and
// the loaded prefix remains — use fresh tables for loading.
func (db *DB) BulkLoad(tbl *Table, rows []Payload) error {
	var err error
	var firstRow int
	ts := db.mgr.PublishAt(func(ts Timestamp) {
		firstRow = tbl.NumRows()
		for _, r := range rows {
			if _, e := tbl.Append(ts, r); e != nil {
				err = e
				return
			}
		}
	})
	if err != nil {
		return err
	}
	if db.dur != nil && len(rows) > 0 {
		// Publish-then-log: the load is visible in memory before the append;
		// an append failure means it was never durable (and never acked).
		return db.dur.appendLoad(tbl.Name(), ts, firstRow, rows)
	}
	return nil
}

// Stable returns the newest fully published commit timestamp; reads at
// Stable observe a consistent snapshot.
func (db *DB) Stable() Timestamp { return db.mgr.Stable() }

// Manager exposes the underlying transaction manager for advanced uses
// (the experiment harness and the internal ML implementations take it
// directly).
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Attachment names one table (and optionally a row subset) an ML run will
// update. Versions overrides the per-record snapshot-slot count; 0 uses
// the isolation level's default (Section 5.1 optimizations).
type Attachment struct {
	Table    *Table
	Rows     []RowID
	Versions int
}

// MLRun describes one ML algorithm execution: which tables it updates,
// the sub-transactions to drive to convergence, and how to run them.
type MLRun struct {
	// Isolation selects the synchronization scheme.
	Isolation MLOptions
	// Label names the run in telemetry snapshots (default "job-<id>").
	Label string
	// Workers, when nonzero, runs the job on a throwaway private pool of
	// that many workers instead of the database's shared pool. Zero — the
	// recommended setting — uses the shared pool, where concurrent ML runs
	// interleave on one set of cores.
	Workers int
	// Regions, like Workers, forces a throwaway private pool with that
	// simulated NUMA region count.
	Regions int
	// BatchSize is the scheduling batch size (default 256).
	BatchSize int
	// MaxIterations force-retires sub-transactions after that many
	// committed iterations (0 = run to convergence).
	MaxIterations uint64
	// Deadline is this run's wall-clock budget; past it the job is retired
	// and Wait reports ErrJobDeadline. 0 uses the database default
	// (WithDeadline), which may itself be disabled.
	Deadline time.Duration
	// StallTimeout arms the progress watchdog for this run: no iteration
	// heartbeat for that long convicts the job with ErrJobStalled. 0 uses
	// the database default (WithStallTimeout).
	StallTimeout time.Duration
	// Retry overrides the database's abort-retry policy (WithRetry) for
	// this run; nil inherits the default. Retried attempts reuse this
	// MLRun verbatim — retry is safe because each failed attempt's
	// uber-transaction aborted without publishing anything.
	Retry *RetryPolicy
	// Attach lists the tables the algorithm updates.
	Attach []Attachment
	// Subs are the user-defined iterative transactions.
	Subs []IterativeTransaction
	// RegionOf routes sub-transaction i to a NUMA region; nil spreads
	// round-robin.
	RegionOf func(i int) int
	// ShardOf routes sub-transaction i to a shard (sharded databases only;
	// single-kernel runs ignore it). nil uses the default placement: sub i
	// runs on the shard owning global row i of the run's first attached
	// table — the convention of the built-in algorithms, whose sub i owns
	// row i.
	ShardOf func(i int) int
	// IterationHook runs before every sub-transaction execution
	// (experiments use it to inject stragglers).
	IterationHook func(worker int)
	// Observer, when non-nil, collects engine telemetry for this run
	// (counters, gauges, convergence series, latency histograms). nil keeps
	// telemetry fully disabled at zero cost — unless the database runs a
	// debug server (WithDebugServer), which auto-attaches one so /metrics
	// always has data. See NewObserver.
	Observer *Observer
	// Tracer, when non-nil, records this run's scheduling timeline into
	// per-worker ring buffers (see NewTracer). nil inherits the debug
	// server's shared tracer when one is enabled, else tracing stays fully
	// disabled at zero cost.
	Tracer *Tracer
	// ConvergeTogether (synchronous level only) retires sub-transactions
	// collectively at the first round where every live one votes Done —
	// the global convergence criterion of bulk-synchronous engines. Use
	// it when a sub-transaction's value can become momentarily stable
	// while its inputs still change (e.g. PageRank).
	ConvergeTogether bool
	// Chaos, when non-nil, injects deterministic scheduling faults into
	// this run (see internal/chaos). Test/experiment only.
	Chaos FaultInjector
	// Recorder, when non-nil, records this run's isolation-relevant
	// history for post-hoc invariant checking (see internal/check). nil
	// keeps recording fully disabled at zero cost.
	Recorder RunRecorder
}

// JobHandle tracks one in-flight ML run submitted with SubmitML. Under a
// retry policy one handle spans every attempt: the job pointer is swapped
// on resubmission and Wait resolves only when the final attempt committed
// or failed terminally.
type JobHandle struct {
	job        atomic.Pointer[exec.Job]
	attempts   atomic.Int32
	started    time.Time
	done       chan struct{}
	cancelOnce sync.Once
	cancelCh   chan struct{}
	stats      ExecStats
	ts         Timestamp
	err        error
}

// CommitTS returns the uber-transaction's commit timestamp: zero until the
// job resolved, and zero forever if it aborted or was never acknowledged
// (a crashed run may have published in the dying process's memory, but an
// unacknowledged commit has no timestamp the caller may rely on).
func (h *JobHandle) CommitTS() Timestamp {
	select {
	case <-h.done:
		return h.ts
	default:
		return 0
	}
}

// Wait blocks until the job finished (including the uber-transaction's
// commit or abort, and any retries) and returns its final stats. Stats are
// meaningful even on error: a cancelled job reports the work done before
// the cancellation took effect; a retried job reports its last attempt.
func (h *JobHandle) Wait() (ExecStats, error) {
	<-h.done
	return h.stats, h.err
}

// Cancel asks the job to stop: its remaining sub-transactions retire at
// the next scheduling point, the uber-transaction aborts (no updates
// become visible), no further retry attempts are made, and Wait reports
// ErrJobCancelled.
func (h *JobHandle) Cancel() { h.cancelOnce.Do(func() { close(h.cancelCh) }) }

// Attempts returns how many times the run has been submitted to the engine
// so far: 1 without retries, more when the retry policy resubmitted it.
func (h *JobHandle) Attempts() int { return int(h.attempts.Load()) }

// Stats returns a live snapshot while the job runs, or the final stats
// once it finished.
func (h *JobHandle) Stats() ExecStats {
	select {
	case <-h.done:
		return h.stats
	default:
		return h.job.Load().Stats()
	}
}

// Done returns a channel closed when the job (and its commit/abort) is
// finished.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// SubmitML starts one ML algorithm as an uber-transaction on the
// database's shared worker pool and returns without waiting: it installs
// iterative records on the attached tables, then drives the
// sub-transactions to convergence concurrently with any other in-flight
// jobs. On success the result is atomically published; on error or
// cancellation the uber-transaction is aborted and the tables are
// untouched. Cancelling ctx cancels the job (Wait then reports ctx's
// error).
func (db *DB) SubmitML(ctx context.Context, run MLRun) (*JobHandle, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	// Registered under the same critical section as the closed check, so a
	// concurrent Close either rejects this submission or waits for its
	// commit/abort; every error return below must deregister.
	db.handles.Add(1)
	pool := db.pool
	db.mu.Unlock()

	// Admission control: the slot spans the whole run — every retry attempt
	// plus the final commit/abort — so WithMaxInflight bounds real engine
	// load, not just the momentary submission rate.
	if err := db.gate.Acquire(ctx, db.admitWait); err != nil {
		db.handles.Done()
		if run.Observer != nil && err == resilience.ErrOverloaded {
			run.Observer.Inc(0, obs.LoadSheds)
		}
		return nil, err
	}

	// Resolve the effective supervision settings: per-run values override
	// the database defaults.
	cfg := exec.JobConfig{
		BatchSize:        run.BatchSize,
		MaxIterations:    run.MaxIterations,
		Deadline:         run.Deadline,
		StallTimeout:     run.StallTimeout,
		RegionOf:         run.RegionOf,
		IterationHook:    run.IterationHook,
		ConvergeTogether: run.ConvergeTogether,
		Observer:         run.Observer,
		Tracer:           run.Tracer,
		Label:            run.Label,
		Chaos:            run.Chaos,
		Recorder:         run.Recorder,
	}
	if cfg.Tracer == nil {
		cfg.Tracer = db.tracer
	}
	if db.agg != nil {
		if cfg.Observer == nil {
			// The debug server aggregates across runs; give uninstrumented
			// runs an observer so /metrics reflects them too.
			cfg.Observer = obs.New()
		}
		db.agg.Attach(cfg.Observer)
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = db.deadline
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = db.stall
	}
	policy := db.retry
	if run.Retry != nil {
		policy = *run.Retry
	}
	if db.degrade != nil {
		batch := cfg.BatchSize
		if batch <= 0 {
			batch = exec.DefaultBatchSize
		}
		cfg.BatchSize = db.degrade(db.gate.Pressure(), batch)
	}

	// begin opens one attempt's uber-transaction and installs the iterative
	// records; each retry repeats it from scratch, since the failed
	// attempt's Abort tore everything down.
	begin := func() (*itx.Uber, error) {
		u, err := itx.BeginUber(db.mgr, run.Isolation)
		if err != nil {
			return nil, err
		}
		for _, a := range run.Attach {
			v := a.Versions
			if v == 0 {
				v = u.DefaultVersions()
			}
			if err := u.Attach(a.Table, a.Rows, v); err != nil {
				_ = u.Abort()
				return nil, err
			}
		}
		return u, nil
	}

	u, err := begin()
	if err != nil {
		db.gate.Release()
		db.handles.Done()
		return nil, err
	}

	// Legacy per-run sizing: a throwaway private pool, shared across retry
	// attempts and closed when the handle resolves.
	private := false
	if run.Workers > 0 || run.Regions > 0 {
		pcfg := exec.Config{Workers: run.Workers}
		if run.Regions > 0 {
			pcfg.Topology = numa.NewTopology(run.Regions, pcfg.Resolved().Workers)
		}
		p, err := exec.NewPool(pcfg)
		if err != nil {
			_ = u.Abort()
			db.gate.Release()
			db.handles.Done()
			return nil, err
		}
		pool, private = p, true
	}

	job, err := pool.Submit(run.Subs, run.Isolation, cfg)
	if err != nil {
		if private {
			pool.Close()
		}
		_ = u.Abort()
		db.gate.Release()
		db.handles.Done()
		if err == exec.ErrPoolClosed {
			err = ErrClosed
		}
		return nil, err
	}

	h := &JobHandle{done: make(chan struct{}), cancelCh: make(chan struct{}), started: time.Now()}
	h.job.Store(job)
	h.attempts.Store(1)
	if db.debug != nil {
		db.jobsMu.Lock()
		db.liveJobs[h] = jobMeta{deadline: cfg.Deadline}
		db.jobsMu.Unlock()
	}
	go db.supervise(ctx, h, u, pool, private, run, cfg, policy, begin)
	return h, nil
}

// quiesceGrace bounds how long supervise waits, after a forced retirement,
// for in-flight workers to acknowledge the cancellation before it aborts the
// uber-transaction anyway. A worker still wedged past the grace can no
// longer install anything (the engine re-checks cancellation between Execute
// and Finalize), but resubmitting the same sub-transactions underneath it
// would be unsafe — so a non-quiesced job is never retried.
const quiesceGrace = time.Second

// supervise drives one SubmitML handle to resolution: it watches the
// in-flight attempt, commits on success, aborts on failure, and — when the
// retry policy allows — backs off and resubmits. It owns h.stats/h.err and
// closes h.done exactly once, after the last attempt's commit or abort, so
// "Wait returned" always means "nothing of this run is still in flight" —
// up to a worker wedged in user code beyond quiesceGrace, whose attempt can
// no longer publish anything and is never retried under.
func (db *DB) supervise(ctx context.Context, h *JobHandle, u *itx.Uber,
	pool *exec.Pool, private bool, run MLRun, cfg exec.JobConfig,
	policy RetryPolicy, begin func() (*itx.Uber, error)) {
	defer db.handles.Done()
	defer db.gate.Release()
	if db.agg != nil {
		defer db.agg.Complete(cfg.Observer)
	}
	defer db.settleJob(h, cfg.Deadline)
	defer close(h.done)
	if private {
		defer pool.Close()
	}
	abort := func() {
		_ = u.Abort()
		if run.Recorder != nil {
			run.Recorder.RecordUberAbort()
		}
	}
	// The first attempt's job id decorrelates this handle's jittered backoff
	// schedule from other handles sharing the same policy; it stays fixed
	// across attempts so the per-handle schedule is deterministic.
	token := h.job.Load().ID()
	for attempt := 1; ; attempt++ {
		job := h.job.Load()
		// The watcher is inline — not a separate goroutine — so job
		// completion releases it immediately even when ctx is never
		// cancelled: nothing here can outlive the handle. (A nil
		// ctx.Done() channel simply never fires.)
		select {
		case <-ctx.Done():
			job.Cancel()
		case <-h.cancelCh:
			job.Cancel()
		case <-job.Done():
		}
		stats, err := job.Wait()
		h.stats = stats
		// A forced retirement (stall conviction, deadline force-finish)
		// resolves Wait while a wedged worker may still be mid-Execute; wait
		// for every in-flight worker to acknowledge the cancellation before
		// touching the uber-transaction it is attached to. Instant after a
		// natural finish.
		quiesced := job.Quiesce(quiesceGrace)
		if err == nil {
			if db.dur.killed(chaos.CrashBeforePrepare) {
				// Simulated death before the uber-commit's prepare: nothing
				// was published and nothing is acknowledged.
				_ = u.Abort()
				h.err = chaos.ErrCrashed
				return
			}
			ts, cerr := u.Commit()
			if cerr != nil {
				if run.Recorder != nil {
					run.Recorder.RecordUberAbort()
				}
				h.err = cerr
				return
			}
			if db.dur.killed(chaos.CrashAfterPrepare) {
				// Published in memory but never logged: the commit vanishes
				// on recovery, and since it is never acknowledged here,
				// committed-exactly-or-absent holds.
				h.err = chaos.ErrCrashed
				return
			}
			if db.dur != nil {
				if werr := db.dur.appendCommit(ts, distinctTables(run.Attach), job.ID()); werr != nil {
					// The append or its fsync failed — the commit may not
					// survive a restart, so it must not be acknowledged.
					h.err = werr
					return
				}
			}
			h.ts = ts
			if run.Recorder != nil {
				run.Recorder.RecordUberCommit(ts)
			}
			// End-to-end latency: first submission to atomic publish,
			// spanning every retry attempt in between.
			if cfg.Observer != nil {
				cfg.Observer.RecordLatency(0, obs.JobCommitLatency, int64(time.Since(h.started)))
			}
			if cfg.Tracer != nil {
				cfg.Tracer.Instant(0, trace.KindCommit, job.ID(), int64(ts))
			}
			return
		}
		abort()
		if err == exec.ErrJobCancelled && ctx.Err() != nil {
			err = ctx.Err()
		}
		delay, retry := policy.ShouldRetryFor(token, err, attempt)
		if !quiesced {
			// A worker is still wedged inside this attempt's user code and
			// shares the sub-transaction instances a retry would re-begin;
			// resubmitting underneath it could mix attempts. Terminal.
			retry = false
		}
		if !retry || ctx.Err() != nil || cancelled(h.cancelCh) {
			h.err = err
			return
		}
		// Deterministic backoff; a cancellation during the sleep resolves
		// the handle with the attempt's error immediately.
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			h.err = ctx.Err()
			return
		case <-h.cancelCh:
			timer.Stop()
			h.err = err
			return
		}
		nu, berr := begin()
		if berr != nil {
			h.err = berr
			return
		}
		u = nu
		nj, serr := pool.Submit(run.Subs, run.Isolation, cfg)
		if serr != nil {
			abort()
			h.err = serr
			return
		}
		h.job.Store(nj)
		h.attempts.Store(int32(attempt + 1))
		if cfg.Observer != nil {
			// Submit's BeginRun archived the failed attempt's counters into
			// the cumulative view; count this resubmission once there.
			cfg.Observer.Add(0, obs.Retries, 1)
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Instant(0, trace.KindRetry, nj.ID(), int64(attempt+1))
		}
	}
}

func cancelled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// RunML executes one ML algorithm as an uber-transaction and blocks until
// it finished — SubmitML followed by Wait. On error the uber-transaction
// is aborted and the tables are untouched.
func (db *DB) RunML(run MLRun) (ExecStats, error) {
	h, err := db.SubmitML(context.Background(), run)
	if err != nil {
		return ExecStats{}, err
	}
	return h.Wait()
}
